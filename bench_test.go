// Benchmarks: one per paper artifact (DESIGN.md §4). Each bench runs the
// experiment driver that regenerates the corresponding figure/table, so
// `go test -bench=. -benchmem` exercises the full reproduction and its
// cost. Correctness of the regenerated values is asserted by the tests in
// internal/experiments; here we also re-check the headline anchors once
// per bench so a silent regression cannot hide behind a fast run.
package mmtag_test

import (
	"encoding/json"
	"math"
	"os"
	"runtime"
	"testing"

	"github.com/mmtag/mmtag"
	"github.com/mmtag/mmtag/internal/core"
	"github.com/mmtag/mmtag/internal/dsp"
	"github.com/mmtag/mmtag/internal/frame"
	"github.com/mmtag/mmtag/internal/mac"
	"github.com/mmtag/mmtag/internal/obs"
	"github.com/mmtag/mmtag/internal/obs/event"
	"github.com/mmtag/mmtag/internal/obs/signal"
	"github.com/mmtag/mmtag/internal/obs/tsdb"
	"github.com/mmtag/mmtag/internal/par"
	"github.com/mmtag/mmtag/internal/phy"
	"github.com/mmtag/mmtag/internal/reader"
	"github.com/mmtag/mmtag/internal/rng"
	"github.com/mmtag/mmtag/internal/stream"
	"github.com/mmtag/mmtag/internal/units"
	"github.com/mmtag/mmtag/internal/vanatta"
)

// BenchmarkFigure6S11Sweep regenerates paper Fig. 6 (E1): the 201-point
// S11 sweep of one tag element in both switch states.
func BenchmarkFigure6S11Sweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := mmtag.Figure6(201)
		if err != nil {
			b.Fatal(err)
		}
		if math.Abs(r.CarrierOffDB+15) > 1 || math.Abs(r.CarrierOnDB+5) > 1 {
			b.Fatalf("Fig. 6 anchors moved: off %.1f, on %.1f", r.CarrierOffDB, r.CarrierOnDB)
		}
	}
}

// BenchmarkFigure7LinkBudget regenerates paper Fig. 7 (E2): the 21-point
// range sweep with noise floors and the rate table.
func BenchmarkFigure7LinkBudget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := mmtag.Figure7(21)
		if err != nil {
			b.Fatal(err)
		}
		if r.RateAt4ft < 1e9 || r.RateAt10ft < 1e7 {
			b.Fatalf("Fig. 7 headline moved: %g @4ft, %g @10ft", r.RateAt4ft, r.RateAt10ft)
		}
	}
}

// BenchmarkRetrodirectivity regenerates E3: the Van Atta vs fixed-beam
// incidence sweep (paper Fig. 3's argument, Eq. 5).
func BenchmarkRetrodirectivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := mmtag.Retrodirectivity(25)
		if err != nil {
			b.Fatal(err)
		}
		if r.WorstErrorDeg > 8 {
			b.Fatalf("retrodirectivity broke: %.1f°", r.WorstErrorDeg)
		}
	}
}

// BenchmarkBeamwidth regenerates E4: the §7 geometry check.
func BenchmarkBeamwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := mmtag.Beamwidth(6)
		if err != nil {
			b.Fatal(err)
		}
		if r.HPBWDeg < 15 || r.HPBWDeg > 21 {
			b.Fatalf("beamwidth moved: %.1f°", r.HPBWDeg)
		}
	}
}

// BenchmarkComparisonTable regenerates E5: the §1/§3 baseline table.
func BenchmarkComparisonTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := mmtag.Comparison()
		if err != nil {
			b.Fatal(err)
		}
		if r.MmTagAt4ft < 1e9 {
			b.Fatal("comparison headline moved")
		}
	}
}

// BenchmarkOOKBER regenerates E6 at reduced Monte-Carlo depth: the OOK
// waterfall validating the Fig. 7 thresholds.
func BenchmarkOOKBER(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := mmtag.BERValidation(20_000, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Points) == 0 {
			b.Fatal("no BER points")
		}
	}
}

// BenchmarkMultiTagMAC regenerates E7: the §9 SDM + Aloha network sweep.
func BenchmarkMultiTagMAC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := mmtag.MultiTag([]int{1, 4, 16}, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Points) != 3 {
			b.Fatal("multitag points")
		}
	}
}

// BenchmarkSelfInterference regenerates E8: the §9 isolation sweep with
// full waveform-level decoding at each point.
func BenchmarkSelfInterference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := mmtag.SelfInterference(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if !r.Points[0].Decoded {
			b.Fatal("high-isolation decode failed")
		}
	}
}

// BenchmarkArraySizeAblation regenerates A1: the §8 element-count sweep.
func BenchmarkArraySizeAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := mmtag.ArraySizeAblation([]int{2, 6, 16})
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Points) != 3 {
			b.Fatal("ablation points")
		}
	}
}

// BenchmarkImpairmentAblation regenerates A2: the phase-error sweep.
func BenchmarkImpairmentAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := mmtag.ImpairmentAblation([]float64{0, 20, 60}, 5, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Points) != 3 {
			b.Fatal("impairment points")
		}
	}
}

// BenchmarkWaveformBurst measures the cost of one complete waveform-level
// burst exchange (frame → switch waveform → channel → sync → demod →
// CRC) — the inner loop of every E8-style experiment — with
// observability off (the Nop fast path).
func BenchmarkWaveformBurst(b *testing.B) {
	obs.Disable()
	event.Disable()
	signal.Disable()
	benchBurst(b)
}

// BenchmarkBudgetOnly measures the analytic link-budget path alone — the
// per-point cost of Fig. 7.
func BenchmarkBudgetOnly(b *testing.B) {
	link, err := mmtag.NewLink(mmtag.Feet(4))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := link.ComputeBudget(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchBurst is the shared body of the instrumented-vs-Nop burst
// benchmarks: one complete waveform burst per iteration, drawing every
// sample buffer from a run-long workspace — the steady-state hot path
// every sweep and the ARQ engine now execute.
func benchBurst(b *testing.B) {
	b.Helper()
	link, err := mmtag.NewLink(mmtag.Feet(4))
	if err != nil {
		b.Fatal(err)
	}
	src := mmtag.NewSource(1)
	ws := mmtag.NewWorkspace()
	payload := make([]byte, 64)
	bw := link.Reader.Bandwidths[1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := link.RunWaveformWS(ws, payload, bw, src)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Decoded {
			b.Fatal("burst failed at 4 ft")
		}
	}
}

// BenchmarkWaveformBurstMetricsEnabled is BenchmarkWaveformBurst with
// the observability registry installed: the delta against the plain
// (Nop) benchmark is the full cost of live metric + span collection on
// the hottest path.
func BenchmarkWaveformBurstMetricsEnabled(b *testing.B) {
	obs.Enable()
	defer obs.Disable()
	benchBurst(b)
}

// BenchmarkObsDisabled measures one instrumentation call with no
// registry installed — the per-site cost every hot path pays when
// observability is off (an atomic load and a nil check).
func BenchmarkObsDisabled(b *testing.B) {
	obs.Disable()
	for i := 0; i < b.N; i++ {
		obs.Inc("bench_total")
	}
}

// BenchmarkObsEnabled measures one live labeled counter increment.
func BenchmarkObsEnabled(b *testing.B) {
	obs.Enable()
	defer obs.Disable()
	for i := 0; i < b.N; i++ {
		obs.Inc("bench_total", obs.L("bw", "2GHz"))
	}
}

// benchRecord is one row of BENCH_1.json.
type benchRecord struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// TestWriteBenchJSON emits a machine-readable benchmark trajectory file
// so later PRs can track instrumentation overhead. It only runs when
// MMTAG_BENCH_JSON names the output path (the Makefile's bench-json
// target); plain `go test` skips it.
func TestWriteBenchJSON(t *testing.T) {
	path := os.Getenv("MMTAG_BENCH_JSON")
	if path == "" {
		t.Skip("set MMTAG_BENCH_JSON=<path> to emit the benchmark JSON")
	}
	obs.Disable()
	// Best-of-three per benchmark: the minimum ns/op is the usual
	// noise-robust estimator when the machine has background load.
	run := func(name string, fn func(b *testing.B)) benchRecord {
		best := testing.Benchmark(fn)
		for i := 0; i < 2; i++ {
			if r := testing.Benchmark(fn); r.NsPerOp() < best.NsPerOp() {
				best = r
			}
		}
		t.Logf("%s: %d ns/op, %d allocs/op", name, best.NsPerOp(), best.AllocsPerOp())
		return benchRecord{
			Name:        name,
			NsPerOp:     float64(best.NsPerOp()),
			AllocsPerOp: best.AllocsPerOp(),
			BytesPerOp:  best.AllocedBytesPerOp(),
		}
	}
	records := []benchRecord{
		run("waveform_burst_nop", BenchmarkWaveformBurst),
		run("waveform_burst_metrics_enabled", BenchmarkWaveformBurstMetricsEnabled),
		run("budget_only_nop", BenchmarkBudgetOnly),
		run("obs_call_disabled", BenchmarkObsDisabled),
		run("obs_counter_enabled", BenchmarkObsEnabled),
	}
	overheadPct := func(base, with float64) float64 {
		if base <= 0 {
			return 0
		}
		return (with - base) / base * 100
	}
	out := struct {
		Schema     string        `json:"schema"`
		Note       string        `json:"note"`
		Benchmarks []benchRecord `json:"benchmarks"`
		// NopOverheadPctVsSeed compares the instrumented-but-disabled
		// burst against the uninstrumented seed measurement taken on the
		// same machine immediately before this layer landed.
		SeedBurstNsPerOp     float64 `json:"seed_burst_ns_per_op"`
		NopOverheadPctVsSeed float64 `json:"nop_overhead_pct_vs_seed"`
		EnabledOverheadPct   float64 `json:"enabled_overhead_pct_vs_nop"`
	}{
		Schema:     "mmtag-bench/1",
		Note:       "regenerate with `make bench-json`; numbers are machine-dependent",
		Benchmarks: records,
		// Seed baseline: BenchmarkWaveformBurst on the pre-obs tree
		// (PR 0), same machine class as BENCH_1.json was generated on.
		SeedBurstNsPerOp:     seedBurstNsPerOp,
		NopOverheadPctVsSeed: overheadPct(seedBurstNsPerOp, records[0].NsPerOp),
		EnabledOverheadPct:   overheadPct(records[0].NsPerOp, records[1].NsPerOp),
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// seedBurstNsPerOp is BenchmarkWaveformBurst measured on the seed tree
// (before internal/obs existed): best of three runs taken back-to-back
// with the committed BENCH_1.json on the same machine. Update it only
// when regenerating the file on comparable hardware.
const seedBurstNsPerOp = 199607

// mcBenchBits sizes the Monte-Carlo scaling benchmarks: 2^18 bits is 32
// shards of the phy chunk size — enough to keep every worker busy while
// staying under a second per iteration.
const mcBenchBits = 1 << 18

// benchMonteCarloWorkers runs the sharded OOK Monte-Carlo at a pinned
// worker count. The BER result is identical for every count (the par
// determinism contract); only the wall clock should move.
func benchMonteCarloWorkers(b *testing.B, workers int) {
	b.Helper()
	prev := par.SetWorkers(workers)
	defer par.SetWorkers(prev)
	src := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := phy.MonteCarloBER(phy.OOK{}, 8, mcBenchBits, src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonteCarloBERWorkers1 is the sequential reference stream.
func BenchmarkMonteCarloBERWorkers1(b *testing.B) { benchMonteCarloWorkers(b, 1) }

// BenchmarkMonteCarloBERWorkers2 measures 2-way sharding.
func BenchmarkMonteCarloBERWorkers2(b *testing.B) { benchMonteCarloWorkers(b, 2) }

// BenchmarkMonteCarloBERWorkers4 measures 4-way sharding — the
// configuration the CI bench gate holds to a ≥2× speedup on 4+ CPU
// machines.
func BenchmarkMonteCarloBERWorkers4(b *testing.B) { benchMonteCarloWorkers(b, 4) }

// BenchmarkMonteCarloBERWorkersMax measures NumCPU-way sharding (the
// -workers default).
func BenchmarkMonteCarloBERWorkersMax(b *testing.B) {
	benchMonteCarloWorkers(b, runtime.NumCPU())
}

// benchAngleSweepWorkers runs the 721-angle Van Atta vs fixed-beam
// incidence sweep at a pinned worker count.
func benchAngleSweepWorkers(b *testing.B, workers int) {
	b.Helper()
	prev := par.SetWorkers(workers)
	defer par.SetWorkers(prev)
	va, err := mmtag.NewVanAtta(6, 24e9)
	if err != nil {
		b.Fatal(err)
	}
	fb, err := vanatta.NewFixedBeam(6, 24e9)
	if err != nil {
		b.Fatal(err)
	}
	thetas := make([]float64, 721)
	for i := range thetas {
		thetas[i] = (float64(i)/720 - 0.5) * math.Pi
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vaDB, _ := vanatta.AngleSweep(va, fb, 24e9, thetas)
		if len(vaDB) != len(thetas) {
			b.Fatal("sweep length")
		}
	}
}

// BenchmarkAngleSweepWorkers1 is the sequential angle sweep.
func BenchmarkAngleSweepWorkers1(b *testing.B) { benchAngleSweepWorkers(b, 1) }

// BenchmarkAngleSweepWorkers4 is the 4-way angle sweep.
func BenchmarkAngleSweepWorkers4(b *testing.B) { benchAngleSweepWorkers(b, 4) }

// bench2Record is one row of BENCH_2.json.
type bench2Record struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// TestWriteBenchJSON2 emits BENCH_2.json: the parallel-sweep benchmark
// trajectory the CI bench gate compares against (tools/benchgate). It
// only runs when MMTAG_BENCH2_JSON names the output path (the
// Makefile's bench-json target); plain `go test` skips it.
func TestWriteBenchJSON2(t *testing.T) {
	path := os.Getenv("MMTAG_BENCH2_JSON")
	if path == "" {
		t.Skip("set MMTAG_BENCH2_JSON=<path> to emit the benchmark JSON")
	}
	obs.Disable()
	run := func(name string, fn func(b *testing.B)) bench2Record {
		best := testing.Benchmark(fn)
		for i := 0; i < 2; i++ {
			if r := testing.Benchmark(fn); r.NsPerOp() < best.NsPerOp() {
				best = r
			}
		}
		t.Logf("%s: %d ns/op", name, best.NsPerOp())
		return bench2Record{
			Name:        name,
			NsPerOp:     float64(best.NsPerOp()),
			AllocsPerOp: best.AllocsPerOp(),
			BytesPerOp:  best.AllocedBytesPerOp(),
		}
	}
	records := []bench2Record{
		// calibration_ook_modem is a pure single-thread CPU benchmark used
		// by tools/benchgate to normalize machine speed out of
		// cross-machine comparisons. Keep it first.
		run("calibration_ook_modem", BenchmarkOOKModem),
		run("monte_carlo_ber_workers_1", BenchmarkMonteCarloBERWorkers1),
		run("monte_carlo_ber_workers_2", BenchmarkMonteCarloBERWorkers2),
		run("monte_carlo_ber_workers_4", BenchmarkMonteCarloBERWorkers4),
		run("monte_carlo_ber_workers_max", BenchmarkMonteCarloBERWorkersMax),
		run("angle_sweep_workers_1", BenchmarkAngleSweepWorkers1),
		run("angle_sweep_workers_4", BenchmarkAngleSweepWorkers4),
		run("waveform_burst_nop", BenchmarkWaveformBurst),
	}
	byName := func(name string) bench2Record {
		for _, r := range records {
			if r.Name == name {
				return r
			}
		}
		t.Fatalf("missing record %s", name)
		return bench2Record{}
	}
	ratio := func(a, b bench2Record) float64 {
		if b.NsPerOp <= 0 {
			return 0
		}
		return a.NsPerOp / b.NsPerOp
	}
	w1 := byName("monte_carlo_ber_workers_1")
	out := struct {
		Schema     string         `json:"schema"`
		Note       string         `json:"note"`
		NumCPU     int            `json:"num_cpu"`
		GoVersion  string         `json:"go_version"`
		Benchmarks []bench2Record `json:"benchmarks"`
		// Speedups are workers_1 ns/op over workers_N ns/op: > 1 means the
		// fan-out pays. On a 1-CPU machine they sit near 1 by construction;
		// the benchgate speedup assertion therefore only arms when num_cpu
		// is at least 4.
		MCSpeedup2W   float64 `json:"mc_ber_speedup_workers_2"`
		MCSpeedup4W   float64 `json:"mc_ber_speedup_workers_4"`
		MCSpeedupMax  float64 `json:"mc_ber_speedup_workers_max"`
		SweepSpeedup4 float64 `json:"angle_sweep_speedup_workers_4"`
	}{
		Schema:        "mmtag-bench/2",
		Note:          "regenerate with `make bench-json`; ns/op is machine-dependent, speedups depend on num_cpu",
		NumCPU:        runtime.NumCPU(),
		GoVersion:     runtime.Version(),
		Benchmarks:    records,
		MCSpeedup2W:   ratio(w1, byName("monte_carlo_ber_workers_2")),
		MCSpeedup4W:   ratio(w1, byName("monte_carlo_ber_workers_4")),
		MCSpeedupMax:  ratio(w1, byName("monte_carlo_ber_workers_max")),
		SweepSpeedup4: ratio(byName("angle_sweep_workers_1"), byName("angle_sweep_workers_4")),
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkEventEmitDisabled measures one instrumented event site with
// no log installed — the idiom every hot path uses (`event.Enabled()`
// guard before building the field slice), so this is the cost paid per
// site when the event log is off: an atomic load and a branch.
func BenchmarkEventEmitDisabled(b *testing.B) {
	event.Disable()
	for i := 0; i < b.N; i++ {
		if event.Enabled() {
			event.Emit(0, event.LevelInfo, "bench", "emit", event.D("i", i))
		}
	}
}

// BenchmarkEventEmitEnabled measures one live event emission into the
// ring (encode to JSON bytes + ring store), fields included.
func BenchmarkEventEmitEnabled(b *testing.B) {
	event.EnableWith(event.New(1 << 12))
	defer event.Disable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if event.Enabled() {
			event.Emit(float64(i), event.LevelInfo, "bench", "emit", event.D("i", i))
		}
	}
}

// BenchmarkWaveformBurstEventsEnabled is BenchmarkWaveformBurst with
// the event log installed (metrics registry off): the delta against the
// plain burst is the full cost of structured event capture on the
// hottest path.
func BenchmarkWaveformBurstEventsEnabled(b *testing.B) {
	obs.Disable()
	event.EnableWith(event.New(1 << 16))
	defer event.Disable()
	benchBurst(b)
}

// bench3Record is one row of BENCH_3.json.
type bench3Record struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// TestWriteBenchJSON3 emits BENCH_3.json: the event-log overhead
// trajectory (emit cost on/off, burst cost with events on) that the CI
// bench job gates with `tools/benchgate -require-speedup 0`. It only
// runs when MMTAG_BENCH3_JSON names the output path (the Makefile's
// bench-json3 target); plain `go test` skips it.
func TestWriteBenchJSON3(t *testing.T) {
	path := os.Getenv("MMTAG_BENCH3_JSON")
	if path == "" {
		t.Skip("set MMTAG_BENCH3_JSON=<path> to emit the benchmark JSON")
	}
	obs.Disable()
	event.Disable()
	run := func(name string, fn func(b *testing.B)) bench3Record {
		best := testing.Benchmark(fn)
		for i := 0; i < 2; i++ {
			if r := testing.Benchmark(fn); r.NsPerOp() < best.NsPerOp() {
				best = r
			}
		}
		t.Logf("%s: %d ns/op, %d allocs/op", name, best.NsPerOp(), best.AllocsPerOp())
		return bench3Record{
			Name:        name,
			NsPerOp:     float64(best.NsPerOp()),
			AllocsPerOp: best.AllocsPerOp(),
			BytesPerOp:  best.AllocedBytesPerOp(),
		}
	}
	records := []bench3Record{
		// Same single-thread calibration benchmark as BENCH_2.json, kept
		// first so benchgate can normalize machine speed across files
		// generated on different hardware.
		run("calibration_ook_modem", BenchmarkOOKModem),
		run("event_emit_disabled", BenchmarkEventEmitDisabled),
		run("event_emit_enabled", BenchmarkEventEmitEnabled),
		run("waveform_burst_nop", BenchmarkWaveformBurst),
		run("waveform_burst_events_enabled", BenchmarkWaveformBurstEventsEnabled),
	}
	byName := func(name string) bench3Record {
		for _, r := range records {
			if r.Name == name {
				return r
			}
		}
		t.Fatalf("missing record %s", name)
		return bench3Record{}
	}
	overheadPct := func(base, with float64) float64 {
		if base <= 0 {
			return 0
		}
		return (with - base) / base * 100
	}
	nop := byName("waveform_burst_nop")
	out := struct {
		Schema     string         `json:"schema"`
		Note       string         `json:"note"`
		NumCPU     int            `json:"num_cpu"`
		GoVersion  string         `json:"go_version"`
		Benchmarks []bench3Record `json:"benchmarks"`
		// EventsOverheadPct is the burst-path cost of live event capture
		// relative to the disabled path — the number the PR holds under
		// the benchgate tolerance.
		EventsOverheadPct float64 `json:"events_overhead_pct_vs_nop"`
	}{
		Schema:            "mmtag-bench/3",
		Note:              "regenerate with `make bench-json3`; ns/op is machine-dependent",
		NumCPU:            runtime.NumCPU(),
		GoVersion:         runtime.Version(),
		Benchmarks:        records,
		EventsOverheadPct: overheadPct(nop.NsPerOp, byName("waveform_burst_events_enabled").NsPerOp),
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------
// DSP kernel benchmarks: the primitives underneath every burst, run
// through a warmed workspace. All three are zero-allocation in steady
// state — asserted by TestSteadyStateAllocs in internal/dsp and gated in
// CI via BENCH_4.json.

// BenchmarkFFTRadix2WS measures a 1024-point in-place FFT+IFFT pair
// through a workspace. Since the frequency-domain fast-path PR the
// workspace power-of-two dispatch runs the cached mixed radix-4 plan,
// so this record now tracks that plan; the BENCH_4 record name is kept
// for baseline continuity, and BENCH_6 carries the explicit
// radix-2-kernel vs radix-4-plan comparison.
func BenchmarkFFTRadix2WS(b *testing.B) {
	ws := dsp.NewWorkspace()
	buf := make([]complex128, 1024)
	for i := range buf {
		buf[i] = complex(float64(i%7)-3, float64(i%5)-2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.FFTInPlace(buf)
		ws.IFFTInPlace(buf)
	}
}

// BenchmarkFFTBluesteinWS measures a 1000-point (non-power-of-two)
// FFT+IFFT pair through a workspace whose Bluestein chirp plans are
// cached: after the first call the twiddle/chirp factors and the
// precomputed kernel FFT are reused, so steady state allocates nothing.
func BenchmarkFFTBluesteinWS(b *testing.B) {
	ws := dsp.NewWorkspace()
	buf := make([]complex128, 1000)
	for i := range buf {
		buf[i] = complex(float64(i%7)-3, float64(i%5)-2)
	}
	// Warm both plans so the benchmark measures the cached path.
	ws.FFTInPlace(buf)
	ws.IFFTInPlace(buf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.FFTInPlace(buf)
		ws.IFFTInPlace(buf)
	}
}

// BenchmarkFIRBlockInPlace measures a 63-tap lowpass over a 4096-sample
// block filtered in place.
func BenchmarkFIRBlockInPlace(b *testing.B) {
	taps, err := dsp.DesignLowpass(0.25, 63, dsp.Hamming)
	if err != nil {
		b.Fatal(err)
	}
	fir := dsp.NewFIR(taps)
	buf := make([]complex128, 4096)
	for i := range buf {
		buf[i] = complex(float64(i%9)-4, 0)
	}
	b.SetBytes(int64(len(buf) * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fir.ProcessInPlace(buf)
	}
}

// bench4Record is one row of BENCH_4.json.
type bench4Record struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// TestWriteBenchJSON4 emits BENCH_4.json: the allocation profile of the
// zero-allocation DSP hot path (workspaced burst, modem, BER and sweep
// benchmarks plus the FFT/FIR kernels) that the CI bench-gate4 job holds
// with `tools/benchgate -alloc-tolerance`. It only runs when
// MMTAG_BENCH4_JSON names the output path (the Makefile's bench-json4
// target); plain `go test` skips it.
func TestWriteBenchJSON4(t *testing.T) {
	path := os.Getenv("MMTAG_BENCH4_JSON")
	if path == "" {
		t.Skip("set MMTAG_BENCH4_JSON=<path> to emit the benchmark JSON")
	}
	obs.Disable()
	event.Disable()
	run := func(name string, fn func(b *testing.B)) bench4Record {
		best := testing.Benchmark(fn)
		for i := 0; i < 2; i++ {
			if r := testing.Benchmark(fn); r.NsPerOp() < best.NsPerOp() {
				best = r
			}
		}
		t.Logf("%s: %d ns/op, %d allocs/op, %d B/op",
			name, best.NsPerOp(), best.AllocsPerOp(), best.AllocedBytesPerOp())
		return bench4Record{
			Name:        name,
			NsPerOp:     float64(best.NsPerOp()),
			AllocsPerOp: best.AllocsPerOp(),
			BytesPerOp:  best.AllocedBytesPerOp(),
		}
	}
	records := []bench4Record{
		// Machine-speed calibration first, as in BENCH_2/BENCH_3.
		run("calibration_ook_modem", BenchmarkOOKModem),
		run("waveform_burst_nop", BenchmarkWaveformBurst),
		run("waveform_burst_events_enabled", BenchmarkWaveformBurstEventsEnabled),
		run("event_emit_enabled", BenchmarkEventEmitEnabled),
		run("fft_radix2_1024_ws", BenchmarkFFTRadix2WS),
		run("fft_bluestein_1000_ws", BenchmarkFFTBluesteinWS),
		run("fir_block_inplace", BenchmarkFIRBlockInPlace),
		run("monte_carlo_ber_workers_1", BenchmarkMonteCarloBERWorkers1),
		run("monte_carlo_ber_workers_4", BenchmarkMonteCarloBERWorkers4),
		run("angle_sweep_workers_1", BenchmarkAngleSweepWorkers1),
		run("angle_sweep_workers_4", BenchmarkAngleSweepWorkers4),
	}
	byName := func(name string) bench4Record {
		for _, r := range records {
			if r.Name == name {
				return r
			}
		}
		t.Fatalf("missing record %s", name)
		return bench4Record{}
	}
	ratio := func(a, b bench4Record) float64 {
		if b.NsPerOp <= 0 {
			return 0
		}
		return a.NsPerOp / b.NsPerOp
	}
	overheadPct := func(base, with float64) float64 {
		if base <= 0 {
			return 0
		}
		return (with - base) / base * 100
	}
	nop := byName("waveform_burst_nop")
	out := struct {
		Schema     string         `json:"schema"`
		Note       string         `json:"note"`
		NumCPU     int            `json:"num_cpu"`
		GoVersion  string         `json:"go_version"`
		Benchmarks []bench4Record `json:"benchmarks"`
		// EventsOverheadPct tracks the same figure BENCH_3 records, after
		// the reusable-encode-buffer rework of the event log.
		EventsOverheadPct float64 `json:"events_overhead_pct_vs_nop"`
		// MCSpeedup4W mirrors BENCH_2's field for struct compatibility.
		MCSpeedup4W float64 `json:"mc_ber_speedup_workers_4"`
		// SweepSpeedup4 is workers_1 over workers_4 for AngleSweep — the
		// batching fix holds this at ≥ 1 on multi-core machines (benchgate
		// -require-sweep-speedup).
		SweepSpeedup4 float64 `json:"angle_sweep_speedup_workers_4"`
	}{
		Schema:            "mmtag-bench/4",
		Note:              "regenerate with `make bench-json4`; ns/op is machine-dependent, allocs/op is not",
		NumCPU:            runtime.NumCPU(),
		GoVersion:         runtime.Version(),
		Benchmarks:        records,
		EventsOverheadPct: overheadPct(nop.NsPerOp, byName("waveform_burst_events_enabled").NsPerOp),
		MCSpeedup4W:       ratio(byName("monte_carlo_ber_workers_1"), byName("monte_carlo_ber_workers_4")),
		SweepSpeedup4:     ratio(byName("angle_sweep_workers_1"), byName("angle_sweep_workers_4")),
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkOOKModem measures raw symbol-domain OOK modulation +
// demodulation throughput.
func BenchmarkOOKModem(b *testing.B) {
	src := rng.New(1)
	bits := src.Bits(make([]byte, 4096))
	mod := phy.OOK{}
	b.SetBytes(int64(len(bits)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		syms, err := mod.Modulate(nil, bits)
		if err != nil {
			b.Fatal(err)
		}
		out := mod.Demodulate(nil, syms)
		if len(out) != len(bits) {
			b.Fatal("length")
		}
	}
}

// BenchmarkAloha100Tags measures singulating 100 tags with framed Aloha.
func BenchmarkAloha100Tags(b *testing.B) {
	src := rng.New(1)
	for i := 0; i < b.N; i++ {
		r, err := mac.RunAloha(100, mac.DefaultAlohaConfig(), src)
		if err != nil {
			b.Fatal(err)
		}
		if r.Resolved != 100 {
			b.Fatal("unresolved tags")
		}
	}
}

// BenchmarkRateTable measures the paper's SNR→rate mapping.
func BenchmarkRateTable(b *testing.B) {
	bws := units.PaperBandwidths()
	for i := 0; i < b.N; i++ {
		if _, _, ok := units.AchievableRate(-65, 300, 5, bws); !ok {
			b.Fatal("rate mapping broke")
		}
	}
}

// BenchmarkEnergyFeasibility regenerates E9: the batteryless harvest
// sweep.
func BenchmarkEnergyFeasibility(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := mmtag.EnergyFeasibility(11)
		if err != nil {
			b.Fatal(err)
		}
		if r.BatterylessRangeFt < 10 {
			b.Fatal("batteryless range regressed")
		}
	}
}

// BenchmarkAntiCollision regenerates E10: Aloha vs query tree.
func BenchmarkAntiCollision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := mmtag.AntiCollision([]int{8, 32}, 10, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Points) != 2 {
			b.Fatal("anticol points")
		}
	}
}

// BenchmarkBlockage regenerates E11: the §4 NLOS fallback sweep.
func BenchmarkBlockage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := mmtag.Blockage()
		if err != nil {
			b.Fatal(err)
		}
		if !r.SeveredWithoutReflector {
			b.Fatal("blockage sanity broke")
		}
	}
}

// BenchmarkRateAdaptation regenerates E12: the OOK/4-ASK adaptation
// sweep.
func BenchmarkRateAdaptation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := mmtag.RateAdaptation(21)
		if err != nil {
			b.Fatal(err)
		}
		if r.PeakRateBps != 2e9 {
			b.Fatal("adaptation peak regressed")
		}
	}
}

// BenchmarkFadingMargin regenerates E13: the Rician margin sweep
// including ten waveform decodes per K.
func BenchmarkFadingMargin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := mmtag.FadingMargin(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Points) != 4 {
			b.Fatal("fading points")
		}
	}
}

// BenchmarkBandScaling regenerates E14: the 24/39/60 GHz comparison.
func BenchmarkBandScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := mmtag.BandScaling()
		if err != nil {
			b.Fatal(err)
		}
		if r.Points[0].RateAt4ft < 1e9 {
			b.Fatal("24 GHz anchor regressed")
		}
	}
}

// BenchmarkMobilityTrack measures the reader-tracks-walking-tag loop of
// the AR-streaming scenario.
func BenchmarkMobilityTrack(b *testing.B) {
	cb, err := mmtag.NewCodebook(-1.5, 1.5, 24)
	if err != nil {
		b.Fatal(err)
	}
	cfg := mmtag.TrackConfig{
		Walk: mmtag.Mobility{
			Waypoints: []mmtag.Vec{{X: 3, Y: 1}, {X: 1.2, Y: 0}, {X: 3, Y: -1}},
			SpeedMps:  0.5,
		},
		TagHeading: math.Pi,
		Codebook:   cb,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := mmtag.RunTrack(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.MaxRate < 1e8 {
			b.Fatal("track rate regressed")
		}
	}
}

// BenchmarkCodedBER regenerates E15 at reduced Monte-Carlo depth.
func BenchmarkCodedBER(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := mmtag.CodedBER(40_000, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Points) == 0 {
			b.Fatal("coded points")
		}
	}
}

// BenchmarkARQGoodput regenerates E16: waveform-level stop-and-wait ARQ
// across the 2 GHz cliff.
func BenchmarkARQGoodput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := mmtag.ARQGoodput(6, uint64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Points) != 7 {
			b.Fatal("arq points")
		}
	}
}

// BenchmarkPlanarTag regenerates E17: the 2-D Van Atta comparison
// (includes the 61×61 bistatic peak searches).
func BenchmarkPlanarTag(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := mmtag.PlanarTag()
		if err != nil {
			b.Fatal(err)
		}
		if r.PlanarGainDBi < 16 {
			b.Fatal("planar gain regressed")
		}
	}
}

// ---------------------------------------------------------------------
// Signal-tap overhead benchmarks (BENCH_5.json): the observability
// contract of the flight-recorder PR — signal taps add zero steady-state
// allocations to the burst hot path, and the flight recorder reuses its
// ring slots once warm.

// benchTappedBurst is the shared body of the signal-tap benchmarks: the
// workspaced burst loop with a warm-up pass outside the timed region so
// the workspace's FFT plans, the tap's reusable snapshot buffers and
// (when a flight recorder is attached) every ring slot are grown before
// measurement — the steady state the zero-allocation contract covers.
// degraded drops the reader's self-interference isolation below the §9
// working point so every burst fails and exercises the failure path.
func benchTappedBurst(b *testing.B, degraded bool) {
	b.Helper()
	link, err := mmtag.NewLink(mmtag.Feet(4))
	if err != nil {
		b.Fatal(err)
	}
	if degraded {
		link.Reader.IsolationDB = 20
	}
	src := mmtag.NewSource(1)
	ws := mmtag.NewWorkspace()
	payload := make([]byte, 64)
	bw := link.Reader.Bandwidths[1]
	for i := 0; i < 8; i++ {
		res, err := link.RunWaveformWS(ws, payload, bw, src)
		if err != nil {
			b.Fatal(err)
		}
		if res.Decoded == degraded {
			b.Fatalf("warm-up decoded=%v with degraded=%v", res.Decoded, degraded)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := link.RunWaveformWS(ws, payload, bw, src)
		if err != nil {
			b.Fatal(err)
		}
		if res.Decoded == degraded {
			b.Fatal("unexpected decode outcome mid-run")
		}
	}
}

// BenchmarkWaveformBurstTapsEnabled is BenchmarkWaveformBurst with the
// signal taps installed (metrics and events off): the delta against the
// Nop benchmark is the full cost of per-burst PAPR/RMS/sync/EVM capture
// and the coherent last-burst snapshot. Steady-state allocations must
// match the Nop path exactly — the tap reuses its snapshot buffers.
func BenchmarkWaveformBurstTapsEnabled(b *testing.B) {
	obs.Disable()
	event.Disable()
	signal.Enable()
	defer signal.Disable()
	benchTappedBurst(b, false)
}

// BenchmarkWaveformBurstFailNop measures the failing-burst path with
// every observability layer off — the baseline the flight-recorder
// benchmark is held against. (A failed decode allocates regardless of
// taps: the reader wraps the sync error.)
func BenchmarkWaveformBurstFailNop(b *testing.B) {
	obs.Disable()
	event.Disable()
	signal.Disable()
	benchTappedBurst(b, true)
}

// BenchmarkWaveformBurstFlightRec measures the failure path with a
// flight recorder attached: every burst fails (decode error at 20 dB
// isolation) and is captured into the ring, which reuses its slots once
// warm, so steady state adds nothing over the fail-path baseline.
func BenchmarkWaveformBurstFlightRec(b *testing.B) {
	obs.Disable()
	event.Disable()
	tap := signal.Enable()
	tap.SetFlightRecorder(8)
	defer signal.Disable()
	benchTappedBurst(b, true)
}

// bench5Record is one row of BENCH_5.json.
type bench5Record struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// TestWriteBenchJSON5 emits BENCH_5.json: the signal-tap overhead
// profile the CI bench-gate5 job holds with `tools/benchgate
// -alloc-tolerance`. Beyond recording, it asserts the PR's two
// allocation contracts directly: taps-enabled steady state allocates no
// more than the Nop path, and the taps-disabled path has not regressed
// against the committed BENCH_4 baseline. It only runs when
// MMTAG_BENCH5_JSON names the output path (the Makefile's bench-json5
// target); plain `go test` skips it.
func TestWriteBenchJSON5(t *testing.T) {
	path := os.Getenv("MMTAG_BENCH5_JSON")
	if path == "" {
		t.Skip("set MMTAG_BENCH5_JSON=<path> to emit the benchmark JSON")
	}
	obs.Disable()
	event.Disable()
	signal.Disable()
	run := func(name string, fn func(b *testing.B)) bench5Record {
		best := testing.Benchmark(fn)
		for i := 0; i < 2; i++ {
			if r := testing.Benchmark(fn); r.NsPerOp() < best.NsPerOp() {
				best = r
			}
		}
		t.Logf("%s: %d ns/op, %d allocs/op, %d B/op",
			name, best.NsPerOp(), best.AllocsPerOp(), best.AllocedBytesPerOp())
		return bench5Record{
			Name:        name,
			NsPerOp:     float64(best.NsPerOp()),
			AllocsPerOp: best.AllocsPerOp(),
			BytesPerOp:  best.AllocedBytesPerOp(),
		}
	}
	records := []bench5Record{
		// Machine-speed calibration first, as in BENCH_2/3/4.
		run("calibration_ook_modem", BenchmarkOOKModem),
		run("waveform_burst_nop", BenchmarkWaveformBurst),
		run("waveform_burst_taps_enabled", BenchmarkWaveformBurstTapsEnabled),
		run("waveform_burst_fail_nop", BenchmarkWaveformBurstFailNop),
		run("waveform_burst_flightrec", BenchmarkWaveformBurstFlightRec),
	}
	byName := func(name string) bench5Record {
		for _, r := range records {
			if r.Name == name {
				return r
			}
		}
		t.Fatalf("missing record %s", name)
		return bench5Record{}
	}
	nop := byName("waveform_burst_nop")
	taps := byName("waveform_burst_taps_enabled")
	if taps.AllocsPerOp > nop.AllocsPerOp {
		t.Errorf("signal taps allocate on the burst hot path: %d allocs/op enabled vs %d nop",
			taps.AllocsPerOp, nop.AllocsPerOp)
	}
	failNop := byName("waveform_burst_fail_nop")
	flight := byName("waveform_burst_flightrec")
	if flight.AllocsPerOp > failNop.AllocsPerOp {
		t.Errorf("flight recorder allocates in steady state: %d allocs/op vs %d on the bare fail path",
			flight.AllocsPerOp, failNop.AllocsPerOp)
	}
	// The taps-disabled path must stay at the BENCH_4 allocation budget:
	// adding the tap sites cannot cost the Nop path anything.
	if data, err := os.ReadFile("BENCH_4.json"); err == nil {
		var b4 struct {
			Benchmarks []bench5Record `json:"benchmarks"`
		}
		if err := json.Unmarshal(data, &b4); err != nil {
			t.Fatalf("BENCH_4.json: %v", err)
		}
		for _, r := range b4.Benchmarks {
			if r.Name == "waveform_burst_nop" && nop.AllocsPerOp > r.AllocsPerOp+2 {
				t.Errorf("taps-disabled burst regressed vs BENCH_4: %d allocs/op, baseline %d",
					nop.AllocsPerOp, r.AllocsPerOp)
			}
		}
	}
	overheadPct := func(base, with float64) float64 {
		if base <= 0 {
			return 0
		}
		return (with - base) / base * 100
	}
	out := struct {
		Schema     string         `json:"schema"`
		Note       string         `json:"note"`
		NumCPU     int            `json:"num_cpu"`
		GoVersion  string         `json:"go_version"`
		Benchmarks []bench5Record `json:"benchmarks"`
		// TapsOverheadPct is the burst-path cost of live signal capture
		// relative to the disabled path — the number the PR holds under
		// the benchgate tolerance.
		TapsOverheadPct float64 `json:"taps_overhead_pct_vs_nop"`
	}{
		Schema:          "mmtag-bench/5",
		Note:            "regenerate with `make bench-json5`; ns/op is machine-dependent, allocs/op is not",
		NumCPU:          runtime.NumCPU(),
		GoVersion:       runtime.Version(),
		Benchmarks:      records,
		TapsOverheadPct: overheadPct(nop.NsPerOp, taps.NsPerOp),
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------
// Frequency-domain fast-path benchmarks (BENCH_6.json): the overlap-save
// convolution, real-input FFT, radix-4 kernel and FFT preamble-search
// figures, plus the batched demodulation path. The headline claims —
// FFT convolution beats the direct 63-tap block filter by the gated
// factor, and the radix-4 plan beats the plain radix-2 kernel — are
// enforced in CI by benchgate's -ratio gates over these records.

// BenchmarkFFTRadix2Kernel measures the plain iterative radix-2 kernel
// (package-level FFTInPlace, no workspace, no plan) on a 1024-point
// FFT+IFFT pair — the baseline the cached radix-4 plan is gated against.
func BenchmarkFFTRadix2Kernel(b *testing.B) {
	buf := make([]complex128, 1024)
	for i := range buf {
		buf[i] = complex(float64(i%7)-3, float64(i%5)-2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dsp.FFTInPlace(buf)
		dsp.IFFTInPlace(buf)
	}
}

// BenchmarkFFTRadix4WS measures the same 1024-point FFT+IFFT pair
// through a workspace, which dispatches to the cached mixed radix-4
// plan (gathered permutation + radix-4 butterfly ladder).
func BenchmarkFFTRadix4WS(b *testing.B) {
	ws := dsp.NewWorkspace()
	buf := make([]complex128, 1024)
	for i := range buf {
		buf[i] = complex(float64(i%7)-3, float64(i%5)-2)
	}
	ws.FFTInPlace(buf) // warm the plan cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.FFTInPlace(buf)
		ws.IFFTInPlace(buf)
	}
}

// BenchmarkRFFTWS measures the packed real-input transform on 4096
// reals (the periodogram/envelope-correlation workload): one length-2048
// complex FFT plus the unpack recursion instead of a length-4096
// complex transform.
func BenchmarkRFFTWS(b *testing.B) {
	ws := dsp.NewWorkspace()
	x := make([]float64, 4096)
	for i := range x {
		x[i] = float64(i%9) - 4
	}
	dsp.RFFTWS(ws, x) // warm the plan cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.Reset()
		dsp.RFFTWS(ws, x)
	}
}

// BenchmarkFIRFFTBlockWS measures the frequency-domain block filter on
// exactly the BenchmarkFIRBlockInPlace workload (63-tap lowpass over a
// 4096-sample block) — the pair the FFT-convolution speedup gate reads.
func BenchmarkFIRFFTBlockWS(b *testing.B) {
	taps, err := dsp.DesignLowpass(0.25, 63, dsp.Hamming)
	if err != nil {
		b.Fatal(err)
	}
	ff := dsp.NewFIRFFTTaps(taps)
	ws := dsp.NewWorkspace()
	buf := make([]complex128, 4096)
	for i := range buf {
		buf[i] = complex(float64(i%9)-4, 0)
	}
	ff.ProcessWS(ws, buf) // warm plans and pools
	b.SetBytes(int64(len(buf) * 16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.Reset()
		ff.ProcessWS(ws, buf)
	}
}

// benchXCorrInputs builds the preamble-search-shaped correlation
// workload: a 4096-sample capture scanned by a dense 256-sample
// reference (dense enough that the cost model picks the FFT path).
func benchXCorrInputs() (x, y []complex128) {
	x = make([]complex128, 4096)
	for i := range x {
		x[i] = complex(float64(i%11)-5, float64(i%3)-1)
	}
	y = make([]complex128, 256)
	for i := range y {
		y[i] = complex(float64(i%5)-2, float64(i%7)-3)
	}
	return x, y
}

// BenchmarkXCorrDirect measures the O(lags·len(y)) reference sliding
// correlation on the dense 4096×256 workload.
func BenchmarkXCorrDirect(b *testing.B) {
	x, y := benchXCorrInputs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(dsp.XCorr(x, y)) == 0 {
			b.Fatal("empty correlation")
		}
	}
}

// BenchmarkXCorrFFTWS measures the same correlation through XCorrWS,
// whose cost model sends this dense workload down the circular-FFT path.
func BenchmarkXCorrFFTWS(b *testing.B) {
	x, y := benchXCorrInputs()
	ws := dsp.NewWorkspace()
	dsp.XCorrWS(ws, x, y) // warm the plan cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.Reset()
		if len(dsp.XCorrWS(ws, x, y)) == 0 {
			b.Fatal("empty correlation")
		}
	}
}

// BenchmarkDecodeBurstBatch measures batched demodulation: eight
// captured bursts decoded back to back through one reader pipeline
// (one workspace reset per burst, buffers shared across the batch).
// ns/op is per batch of eight.
func BenchmarkDecodeBurstBatch(b *testing.B) {
	w, err := phy.NewRectWaveform(8)
	if err != nil {
		b.Fatal(err)
	}
	const nBursts = 8
	var bursts [][]complex128
	for t := 0; t < nBursts; t++ {
		payload := rng.New(uint64(t + 1)).Bytes(make([]byte, 32))
		raw, err := frame.Encode(uint16(t), frame.MCSOOK, payload)
		if err != nil {
			b.Fatal(err)
		}
		syms := phy.PreambleSymbols(0.05)
		bits := frame.BitsFromBytes(nil, raw)
		syms, err = (phy.OOK{Leakage: 0.05}).Modulate(syms, bits)
		if err != nil {
			b.Fatal(err)
		}
		samples := w.Synthesize(syms)
		rx := make([]complex128, 100+len(samples)+60)
		copy(rx[100:], samples)
		bursts = append(bursts, rx)
	}
	p := reader.NewPipeline()
	decode := func() {
		err := p.DecodeBurstBatch(bursts, w, func(i int, f *frame.Decoded, _ reader.RxStats, err error) {
			if err != nil || !f.Trailer.OK {
				b.Fatalf("burst %d failed: %v", i, err)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	decode() // warm the pipeline workspace
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decode()
	}
}

// bench6Record is one row of BENCH_6.json.
type bench6Record struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// TestWriteBenchJSON6 emits BENCH_6.json: the frequency-domain fast-path
// profile the CI bench-gate6 job holds with tools/benchgate, including
// the -ratio gates that pin the FFT-convolution and radix-4 speedups.
// It only runs when MMTAG_BENCH6_JSON names the output path (the
// Makefile's bench-json6 target); plain `go test` skips it.
func TestWriteBenchJSON6(t *testing.T) {
	path := os.Getenv("MMTAG_BENCH6_JSON")
	if path == "" {
		t.Skip("set MMTAG_BENCH6_JSON=<path> to emit the benchmark JSON")
	}
	obs.Disable()
	event.Disable()
	signal.Disable()
	run := func(name string, fn func(b *testing.B)) bench6Record {
		best := testing.Benchmark(fn)
		for i := 0; i < 2; i++ {
			if r := testing.Benchmark(fn); r.NsPerOp() < best.NsPerOp() {
				best = r
			}
		}
		t.Logf("%s: %d ns/op, %d allocs/op, %d B/op",
			name, best.NsPerOp(), best.AllocsPerOp(), best.AllocedBytesPerOp())
		return bench6Record{
			Name:        name,
			NsPerOp:     float64(best.NsPerOp()),
			AllocsPerOp: best.AllocsPerOp(),
			BytesPerOp:  best.AllocedBytesPerOp(),
		}
	}
	records := []bench6Record{
		// Machine-speed calibration first, as in BENCH_2 through BENCH_5.
		run("calibration_ook_modem", BenchmarkOOKModem),
		run("fft_radix2_1024", BenchmarkFFTRadix2Kernel),
		run("fft_radix4_1024_ws", BenchmarkFFTRadix4WS),
		run("rfft_4096_ws", BenchmarkRFFTWS),
		run("fir_block_inplace", BenchmarkFIRBlockInPlace),
		run("fir_fft_block_ws", BenchmarkFIRFFTBlockWS),
		run("xcorr_direct_4096x256", BenchmarkXCorrDirect),
		run("xcorr_fft_4096x256_ws", BenchmarkXCorrFFTWS),
		run("decode_burst_batch8_ws", BenchmarkDecodeBurstBatch),
	}
	byName := func(name string) bench6Record {
		for _, r := range records {
			if r.Name == name {
				return r
			}
		}
		t.Fatalf("missing record %s", name)
		return bench6Record{}
	}
	ratio := func(num, den bench6Record) float64 {
		if den.NsPerOp <= 0 {
			return 0
		}
		return num.NsPerOp / den.NsPerOp
	}
	out := struct {
		Schema     string         `json:"schema"`
		Note       string         `json:"note"`
		NumCPU     int            `json:"num_cpu"`
		GoVersion  string         `json:"go_version"`
		Benchmarks []bench6Record `json:"benchmarks"`
		// The three headline speedups of the frequency-domain fast path.
		// FFTConvSpeedup and Radix4Speedup are re-derived and gated from
		// the raw records by benchgate -ratio; they are recorded here so
		// the committed file tells the story on its own.
		FFTConvSpeedup float64 `json:"fft_conv_speedup_vs_direct_fir"`
		Radix4Speedup  float64 `json:"radix4_speedup_vs_radix2"`
		XCorrSpeedup   float64 `json:"xcorr_fft_speedup_vs_direct"`
	}{
		Schema:         "mmtag-bench/6",
		Note:           "regenerate with `make bench-json6`; ns/op is machine-dependent, allocs/op is not",
		NumCPU:         runtime.NumCPU(),
		GoVersion:      runtime.Version(),
		Benchmarks:     records,
		FFTConvSpeedup: ratio(byName("fir_block_inplace"), byName("fir_fft_block_ws")),
		Radix4Speedup:  ratio(byName("fft_radix2_1024"), byName("fft_radix4_1024_ws")),
		XCorrSpeedup:   ratio(byName("xcorr_direct_4096x256"), byName("xcorr_fft_4096x256_ws")),
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// --- Time-series sampler overhead (BENCH_7.json) -------------------
//
// The sampler's contract is that folding every metric update into the
// virtual-time store adds zero allocations to the per-burst hot path:
// BenchmarkWaveformBurstSampled must report exactly the allocs/op of
// BenchmarkWaveformBurstMetricsEnabled, and the Record micro-benches
// must be allocation-free in steady state. TestWriteBenchJSON7 asserts
// both before emitting the file.

func BenchmarkWaveformBurstSampled(b *testing.B) {
	reg := obs.Enable()
	defer obs.Disable()
	if _, err := tsdb.Attach(reg, 1e-6); err != nil {
		b.Fatal(err)
	}
	benchBurst(b)
}

func BenchmarkTSDBRecordCounter(b *testing.B) {
	reg := obs.NewRegistry()
	smp, err := tsdb.New(1e-6)
	if err != nil {
		b.Fatal(err)
	}
	reg.SetSampleSink(smp)
	reg.AddAt(0, "bench_total", 1) // bind the series outside the loop
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg.AddAt(float64(i%512)*1e-6, "bench_total", 1)
	}
}

func BenchmarkTSDBRecordHistogram(b *testing.B) {
	reg := obs.NewRegistry()
	obs.RegisterBuckets("bench_seconds", 1e-6, 1e-5, 1e-4, 1e-3)
	smp, err := tsdb.New(1e-6)
	if err != nil {
		b.Fatal(err)
	}
	reg.SetSampleSink(smp)
	reg.ObserveAt(0, "bench_seconds", 2e-5)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg.ObserveAt(float64(i%512)*1e-6, "bench_seconds", 2e-5)
	}
}

// bench7Record is one row of BENCH_7.json.
type bench7Record struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// TestWriteBenchJSON7 emits BENCH_7.json: the time-series sampler
// overhead figures, with the zero-extra-allocation contract asserted
// in-test (sampled burst == metrics-only burst, Record micro-benches
// == 0 allocs/op).
func TestWriteBenchJSON7(t *testing.T) {
	path := os.Getenv("MMTAG_BENCH7_JSON")
	if path == "" {
		t.Skip("set MMTAG_BENCH7_JSON=<path> to emit the benchmark JSON")
	}
	obs.Disable()
	event.Disable()
	signal.Disable()
	run := func(name string, fn func(b *testing.B)) bench7Record {
		best := testing.Benchmark(fn)
		for i := 0; i < 2; i++ {
			if r := testing.Benchmark(fn); r.NsPerOp() < best.NsPerOp() {
				best = r
			}
		}
		t.Logf("%s: %d ns/op, %d allocs/op, %d B/op",
			name, best.NsPerOp(), best.AllocsPerOp(), best.AllocedBytesPerOp())
		return bench7Record{
			Name:        name,
			NsPerOp:     float64(best.NsPerOp()),
			AllocsPerOp: best.AllocsPerOp(),
			BytesPerOp:  best.AllocedBytesPerOp(),
		}
	}
	records := []bench7Record{
		// Machine-speed calibration first, as in BENCH_2 through BENCH_6.
		run("calibration_ook_modem", BenchmarkOOKModem),
		run("waveform_burst_nop", BenchmarkWaveformBurst),
		run("waveform_burst_metrics", BenchmarkWaveformBurstMetricsEnabled),
		run("waveform_burst_sampled", BenchmarkWaveformBurstSampled),
		run("tsdb_record_counter", BenchmarkTSDBRecordCounter),
		run("tsdb_record_histogram", BenchmarkTSDBRecordHistogram),
	}
	byName := func(name string) bench7Record {
		for _, r := range records {
			if r.Name == name {
				return r
			}
		}
		t.Fatalf("missing record %s", name)
		return bench7Record{}
	}
	metrics := byName("waveform_burst_metrics")
	sampled := byName("waveform_burst_sampled")
	if sampled.AllocsPerOp != metrics.AllocsPerOp {
		t.Fatalf("sampling changed the burst allocation profile: %d allocs/op sampled vs %d metrics-only",
			sampled.AllocsPerOp, metrics.AllocsPerOp)
	}
	for _, name := range []string{"tsdb_record_counter", "tsdb_record_histogram"} {
		if r := byName(name); r.AllocsPerOp != 0 {
			t.Fatalf("%s: %d allocs/op, want 0 (steady-state Record must not allocate)", name, r.AllocsPerOp)
		}
	}
	out := struct {
		Schema     string         `json:"schema"`
		Note       string         `json:"note"`
		NumCPU     int            `json:"num_cpu"`
		GoVersion  string         `json:"go_version"`
		Benchmarks []bench7Record `json:"benchmarks"`
		// SamplerAllocDelta is the asserted-zero allocation cost of
		// attaching the sampler to the per-burst hot path.
		SamplerAllocDelta int64 `json:"sampler_alloc_delta_per_burst"`
	}{
		Schema:            "mmtag-bench/7",
		Note:              "regenerate with `make bench-json7`; ns/op is machine-dependent, allocs/op is not",
		NumCPU:            runtime.NumCPU(),
		GoVersion:         runtime.Version(),
		Benchmarks:        records,
		SamplerAllocDelta: sampled.AllocsPerOp - metrics.AllocsPerOp,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// --- Streaming decode pipeline (BENCH_8.json) ----------------------
//
// The streaming session layer's contract is twofold: the serial
// streaming Decoder is allocation-free per frame in steady state, and
// the stage-parallel pipeline beats a serial single-burst decode loop
// by ≥2× on 4 workers (sync, demod and decode overlap across frames).
// TestWriteBenchJSON8 asserts the alloc half in-test; the speedup half
// is gated by benchgate -ratio with a min-CPU qualifier so single-core
// CI containers skip it instead of measuring scheduler thrash.

// streamBenchFrames is the stream length each serial/pipelined op
// decodes, so the two ns/op figures are directly comparable.
const streamBenchFrames = 64

// benchStreamSetup captures a pool of real 2 ft receiver bursts (the
// near-clean gigabit operating point) for the decode benchmarks.
func benchStreamSetup(tb testing.TB) (stream.Shape, [][]complex128) {
	tb.Helper()
	const frameBytes = 64
	w, err := phy.NewRectWaveform(core.SamplesPerSymbol)
	if err != nil {
		tb.Fatal(err)
	}
	shape, err := stream.NewShape(w, frameBytes)
	if err != nil {
		tb.Fatal(err)
	}
	l, err := core.NewDefaultLink(units.FeetToMeters(2))
	if err != nil {
		tb.Fatal(err)
	}
	bw := l.Reader.Bandwidths[0]
	seq := rng.NewSequence(7)
	bursts := make([][]complex128, 16)
	for i := range bursts {
		src := seq.At(uint64(i))
		payload := src.Bytes(make([]byte, frameBytes))
		cap, err := l.CaptureWaveform(payload, frame.MCSOOK, bw, src)
		if err != nil {
			tb.Fatal(err)
		}
		bursts[i] = append([]complex128(nil), cap.Samples...)
	}
	return shape, bursts
}

// BenchmarkStreamDecodeFrame is one steady-state frame through the
// serial streaming Decoder — the figure whose allocs/op must be 0.
func BenchmarkStreamDecodeFrame(b *testing.B) {
	shape, bursts := benchStreamSetup(b)
	dec := stream.NewDecoder(shape)
	for i, rx := range bursts {
		dec.Decode(i, rx) // warm the decoder's buffers
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec.Decode(i, bursts[i%len(bursts)])
	}
}

// BenchmarkStreamDecodeSerial decodes streamBenchFrames bursts per op
// through the single-goroutine Decoder: the single-burst-loop baseline.
func BenchmarkStreamDecodeSerial(b *testing.B) {
	shape, bursts := benchStreamSetup(b)
	dec := stream.NewDecoder(shape)
	for i, rx := range bursts {
		dec.Decode(i, rx)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < streamBenchFrames; k++ {
			dec.Decode(k, bursts[k%len(bursts)])
		}
	}
}

// BenchmarkStreamDecodePipelined decodes the same streamBenchFrames
// bursts per op through the stage-parallel pipeline on 4 workers.
func BenchmarkStreamDecodePipelined(b *testing.B) {
	shape, bursts := benchStreamSetup(b)
	p := stream.NewPipeline(shape, stream.Config{Workers: 4, Depth: 8})
	gen := func(_ *dsp.Workspace, idx int, _ []complex128) ([]complex128, error) {
		return bursts[idx%len(bursts)], nil
	}
	fold := func(f *stream.Frame) error { return nil }
	if err := p.Run(streamBenchFrames, gen, fold); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Run(streamBenchFrames, gen, fold); err != nil {
			b.Fatal(err)
		}
	}
}

// bench8Record is one row of BENCH_8.json.
type bench8Record struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// TestWriteBenchJSON8 emits BENCH_8.json: the streaming decode figures,
// with the zero-allocation steady-state contract asserted in-test and
// the pipelined-vs-serial speedup recorded for the benchgate ratio gate
// (stream_decode_serial/stream_decode_pipelined ≥ 2.0 on ≥4 CPUs).
func TestWriteBenchJSON8(t *testing.T) {
	path := os.Getenv("MMTAG_BENCH8_JSON")
	if path == "" {
		t.Skip("set MMTAG_BENCH8_JSON=<path> to emit the benchmark JSON")
	}
	obs.Disable()
	event.Disable()
	signal.Disable()
	run := func(name string, fn func(b *testing.B)) bench8Record {
		best := testing.Benchmark(fn)
		for i := 0; i < 2; i++ {
			if r := testing.Benchmark(fn); r.NsPerOp() < best.NsPerOp() {
				best = r
			}
		}
		t.Logf("%s: %d ns/op, %d allocs/op, %d B/op",
			name, best.NsPerOp(), best.AllocsPerOp(), best.AllocedBytesPerOp())
		return bench8Record{
			Name:        name,
			NsPerOp:     float64(best.NsPerOp()),
			AllocsPerOp: best.AllocsPerOp(),
			BytesPerOp:  best.AllocedBytesPerOp(),
		}
	}
	records := []bench8Record{
		// Machine-speed calibration first, as in BENCH_2 through BENCH_7.
		run("calibration_ook_modem", BenchmarkOOKModem),
		run("stream_decode_frame", BenchmarkStreamDecodeFrame),
		run("stream_decode_serial", BenchmarkStreamDecodeSerial),
		run("stream_decode_pipelined", BenchmarkStreamDecodePipelined),
	}
	byName := func(name string) bench8Record {
		for _, r := range records {
			if r.Name == name {
				return r
			}
		}
		t.Fatalf("missing record %s", name)
		return bench8Record{}
	}
	if r := byName("stream_decode_frame"); r.AllocsPerOp != 0 {
		t.Fatalf("stream_decode_frame: %d allocs/op, want 0 (steady-state decode must not allocate)", r.AllocsPerOp)
	}
	serial := byName("stream_decode_serial")
	pipelined := byName("stream_decode_pipelined")
	speedup := 0.0
	if pipelined.NsPerOp > 0 {
		speedup = serial.NsPerOp / pipelined.NsPerOp
	}
	out := struct {
		Schema     string         `json:"schema"`
		Note       string         `json:"note"`
		NumCPU     int            `json:"num_cpu"`
		GoVersion  string         `json:"go_version"`
		Frames     int            `json:"frames_per_op"`
		Benchmarks []bench8Record `json:"benchmarks"`
		// PipelineSpeedup is re-derived and gated from the raw records by
		// benchgate -ratio "stream_decode_serial/stream_decode_pipelined>=2.0@4";
		// it is recorded here so the committed file tells the story on its own.
		PipelineSpeedup float64 `json:"pipeline_speedup_workers_4"`
	}{
		Schema:          "mmtag-bench/8",
		Note:            "regenerate with `make bench-json8`; ns/op is machine-dependent, allocs/op is not",
		NumCPU:          runtime.NumCPU(),
		GoVersion:       runtime.Version(),
		Frames:          streamBenchFrames,
		Benchmarks:      records,
		PipelineSpeedup: speedup,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
