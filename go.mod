module github.com/mmtag/mmtag

go 1.22
