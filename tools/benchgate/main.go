// Command benchgate is the CI benchmark regression gate: it compares a
// freshly generated BENCH_2.json against the committed baseline and
// fails (exit 1) when a tracked benchmark regresses beyond the
// tolerance, or when the parallel Monte-Carlo speedup the PR promises
// is missing on a machine with enough cores to show it.
//
// Cross-machine noise: raw ns/op is meaningless between a laptop and a
// CI runner, so when both files carry the single-threaded
// calibration_ook_modem record the gate rescales the baseline by the
// calibration ratio before comparing. On the same machine the ratio is
// ≈1 and the gate degrades to a plain comparison.
//
// Usage:
//
//	benchgate -baseline BENCH_2.json -fresh fresh.json [-tolerance 0.20]
//	          [-require-speedup 2.0] [-speedup-min-cpus 4] [-allow-missing]
//
// Both mmtag-bench/2 (parallel sweeps) and mmtag-bench/3 (event-log
// overhead) files are accepted; the two files must share a schema.
// Pass -require-speedup 0 for files that make no parallel-speedup claim
// (BENCH_3.json), and -allow-missing to tolerate benchmarks present in
// the baseline but absent from the fresh run (e.g. a baseline generated
// by a newer tree).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type record struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

type benchFile struct {
	Schema       string   `json:"schema"`
	NumCPU       int      `json:"num_cpu"`
	Benchmarks   []record `json:"benchmarks"`
	MCSpeedup4W  float64  `json:"mc_ber_speedup_workers_4"`
	MCSpeedupMax float64  `json:"mc_ber_speedup_workers_max"`
}

// calibrationName is the pure single-thread benchmark both files must
// share for machine-speed normalization.
const calibrationName = "calibration_ook_modem"

func load(path string) (benchFile, error) {
	var f benchFile
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	switch f.Schema {
	case "mmtag-bench/2", "mmtag-bench/3":
	default:
		return f, fmt.Errorf("%s: schema %q, want mmtag-bench/2 or mmtag-bench/3", path, f.Schema)
	}
	return f, nil
}

func (f benchFile) lookup(name string) (record, bool) {
	for _, r := range f.Benchmarks {
		if r.Name == name {
			return r, true
		}
	}
	return record{}, false
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_2.json", "committed baseline benchmark file")
	freshPath := flag.String("fresh", "", "freshly generated benchmark file to gate")
	tolerance := flag.Float64("tolerance", 0.20, "maximum allowed fractional ns/op regression per benchmark")
	requireSpeedup := flag.Float64("require-speedup", 2.0, "minimum Monte-Carlo speedup at 4+ workers; <= 0 skips the speedup assertion")
	speedupMinCPUs := flag.Int("speedup-min-cpus", 4, "only assert the speedup when the fresh run had at least this many CPUs")
	allowMissing := flag.Bool("allow-missing", false, "warn instead of fail when a baseline benchmark is missing from the fresh run")
	flag.Parse()
	if *freshPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -fresh is required")
		os.Exit(2)
	}
	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if base.Schema != fresh.Schema {
		fmt.Fprintf(os.Stderr, "benchgate: schema mismatch: baseline %s, fresh %s\n", base.Schema, fresh.Schema)
		os.Exit(2)
	}

	// Machine-speed normalization via the shared calibration benchmark.
	scale := 1.0
	bc, okB := base.lookup(calibrationName)
	fc, okF := fresh.lookup(calibrationName)
	if okB && okF && bc.NsPerOp > 0 {
		scale = fc.NsPerOp / bc.NsPerOp
		fmt.Printf("calibration: baseline %.0f ns/op, fresh %.0f ns/op → machine scale %.3f\n",
			bc.NsPerOp, fc.NsPerOp, scale)
	} else {
		fmt.Println("calibration benchmark missing from one file; comparing raw ns/op")
	}

	failed := false
	fmt.Printf("%-34s %14s %14s %9s\n", "benchmark", "baseline(ns)", "fresh(ns)", "delta")
	for _, b := range base.Benchmarks {
		if b.Name == calibrationName || b.NsPerOp <= 0 {
			continue
		}
		f, ok := fresh.lookup(b.Name)
		if !ok {
			if *allowMissing {
				fmt.Printf("%-34s %14.0f %14s %9s  skipped (missing from fresh run)\n", b.Name, b.NsPerOp, "-", "-")
			} else {
				fmt.Printf("%-34s %14.0f %14s %9s  FAIL (missing from fresh run)\n", b.Name, b.NsPerOp, "-", "-")
				failed = true
			}
			continue
		}
		allowed := b.NsPerOp * scale
		delta := f.NsPerOp/allowed - 1
		verdict := "ok"
		if delta > *tolerance {
			verdict = fmt.Sprintf("FAIL (> %.0f%% regression)", *tolerance*100)
			failed = true
		}
		fmt.Printf("%-34s %14.0f %14.0f %+8.1f%%  %s\n", b.Name, allowed, f.NsPerOp, delta*100, verdict)
	}

	// The parallel payoff the PR exists for: ≥2× Monte-Carlo speedup at
	// 4+ workers, asserted only where the hardware can express it and
	// only for files that make the claim (-require-speedup > 0).
	if *requireSpeedup <= 0 {
		fmt.Println("speedup: assertion disabled (-require-speedup <= 0)")
	} else if fresh.NumCPU >= *speedupMinCPUs {
		best := fresh.MCSpeedup4W
		if fresh.MCSpeedupMax > best {
			best = fresh.MCSpeedupMax
		}
		if best < *requireSpeedup {
			fmt.Printf("speedup: best Monte-Carlo speedup %.2fx on %d CPUs — FAIL (need ≥ %.1fx)\n",
				best, fresh.NumCPU, *requireSpeedup)
			failed = true
		} else {
			fmt.Printf("speedup: best Monte-Carlo speedup %.2fx on %d CPUs — ok\n", best, fresh.NumCPU)
		}
	} else {
		fmt.Printf("speedup: fresh run had %d CPU(s) < %d; speedup assertion skipped\n",
			fresh.NumCPU, *speedupMinCPUs)
	}

	if failed {
		fmt.Println("benchgate: FAIL")
		os.Exit(1)
	}
	fmt.Println("benchgate: ok")
}
