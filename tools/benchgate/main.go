// Command benchgate is the CI benchmark regression gate: it compares a
// freshly generated BENCH_2.json against the committed baseline and
// fails (exit 1) when a tracked benchmark regresses beyond the
// tolerance, or when the parallel Monte-Carlo speedup the PR promises
// is missing on a machine with enough cores to show it.
//
// Cross-machine noise: raw ns/op is meaningless between a laptop and a
// CI runner, so when both files carry the single-threaded
// calibration_ook_modem record the gate rescales the baseline by the
// calibration ratio before comparing. On the same machine the ratio is
// ≈1 and the gate degrades to a plain comparison.
//
// Allocations are not subject to machine noise, so allocs/op is gated
// unscaled: mmtag-bench/4 files carry allocs_per_op and bytes_per_op on
// every record, and a fresh run may not exceed the baseline's count by
// more than -alloc-tolerance (fractional) plus -alloc-slack (absolute,
// absorbing testing.B accounting jitter on tiny counts).
//
// Usage:
//
//	benchgate -baseline BENCH_2.json -fresh fresh.json [-tolerance 0.20]
//	          [-require-speedup 2.0] [-speedup-min-cpus 4] [-allow-missing]
//	          [-alloc-tolerance 0.10] [-alloc-slack 2]
//	          [-require-sweep-speedup 1.0]
//	          [-ratio "fir_block_inplace/fir_fft_block_ws>=5"]...
//	benchgate -trend BENCH_2.json BENCH_3.json BENCH_4.json BENCH_5.json
//	benchgate -history BENCH_1.json ... BENCH_6.json fresh.json
//
// mmtag-bench/1 through mmtag-bench/8 files (parallel sweeps, event-log
// overhead, allocation profile, signal-tap overhead, frequency-domain
// fast path, time-series sampler overhead, streaming decode pipeline)
// are accepted; in pair-gate mode the two files must share a schema.
// Pass -require-speedup 0 for files that make no parallel-speedup claim
// (BENCH_3.json), and -allow-missing to tolerate benchmarks present in
// the baseline but absent from the fresh run (e.g. a baseline generated
// by a newer tree).
//
// -ratio (repeatable) asserts a same-machine speedup inside the FRESH
// file alone: "num/den>=min" fails the gate when fresh ns/op of num
// divided by fresh ns/op of den is below min. Because both records come
// from the same run, no calibration scaling applies — this is how the
// mmtag-bench/6 gate pins "FFT convolution ≥ 5× over the direct block
// filter" and "the radix-4 plan beats the radix-2 kernel" on whatever
// machine CI lands on. An optional "@N" qualifier ("num/den>=min@4")
// skips the gate when the fresh run's machine has fewer than N CPUs —
// the mmtag-bench/8 pipeline-speedup gate uses it so single-core CI
// containers don't fail a claim the hardware cannot express.
//
// -trend switches to report mode: instead of gating a pair, it reads
// every file named on the command line (any mmtag-bench/* schema) and
// prints a markdown table of ns/op — and, where recorded, allocs/op —
// per benchmark across the whole BENCH_N.json history, so a PR's perf
// story is visible at a glance. Trend mode never fails the build.
//
// -history is trend's gating sibling: the last argument is the current
// run, everything before it is the committed BENCH_N history. It prints
// a per-metric markdown report — ns/op scaled onto the current machine
// through the shared calibration benchmark, with each benchmark's delta
// against its best historical value, and allocs/op compared raw — and
// exits 1 when any allocation-tracked benchmark regresses beyond
// -alloc-tolerance/-alloc-slack of the best count ever recorded for it.
// ns/op deltas are informational only (cross-machine noise survives even
// calibration), allocation counts are machine-independent and gate hard.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type record struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp are recorded by mmtag-bench/4 files;
	// earlier schemas omit them (zero means "no data" there, and the
	// alloc gate only runs on /4 pairs, where zero means zero).
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
}

type benchFile struct {
	Schema       string   `json:"schema"`
	NumCPU       int      `json:"num_cpu"`
	Benchmarks   []record `json:"benchmarks"`
	MCSpeedup4W  float64  `json:"mc_ber_speedup_workers_4"`
	MCSpeedupMax float64  `json:"mc_ber_speedup_workers_max"`
	// SweepSpeedup4W is the AngleSweep workers-4 over workers-1 ratio
	// recorded by mmtag-bench/4 files (the batching regression fix).
	SweepSpeedup4W float64 `json:"angle_sweep_speedup_workers_4,omitempty"`
}

// calibrationName is the pure single-thread benchmark both files must
// share for machine-speed normalization.
const calibrationName = "calibration_ook_modem"

// ratioGate is one parsed -ratio assertion: fresh ns/op of num divided
// by fresh ns/op of den must be at least min. A trailing "@N" qualifier
// ("num/den>=min@4") skips the gate on machines with fewer than N CPUs —
// for speedups that only exist with real parallel hardware.
type ratioGate struct {
	num, den string
	min      float64
	minCPUs  int
}

// ratioFlags collects repeated -ratio flags.
type ratioFlags []ratioGate

func (r *ratioFlags) String() string {
	parts := make([]string, len(*r))
	for i, g := range *r {
		parts[i] = fmt.Sprintf("%s/%s>=%g", g.num, g.den, g.min)
		if g.minCPUs > 0 {
			parts[i] += fmt.Sprintf("@%d", g.minCPUs)
		}
	}
	return strings.Join(parts, ",")
}

func (r *ratioFlags) Set(s string) error {
	expr, minStr, ok := strings.Cut(s, ">=")
	if !ok {
		return fmt.Errorf("ratio %q: want num/den>=min[@cpus]", s)
	}
	num, den, ok := strings.Cut(strings.TrimSpace(expr), "/")
	if !ok || num == "" || den == "" {
		return fmt.Errorf("ratio %q: want num/den>=min[@cpus]", s)
	}
	minCPUs := 0
	if val, cpus, ok := strings.Cut(minStr, "@"); ok {
		n, err := strconv.Atoi(strings.TrimSpace(cpus))
		if err != nil || n <= 0 {
			return fmt.Errorf("ratio %q: bad @cpus qualifier", s)
		}
		minCPUs, minStr = n, val
	}
	min, err := strconv.ParseFloat(strings.TrimSpace(minStr), 64)
	if err != nil {
		return fmt.Errorf("ratio %q: bad minimum: %v", s, err)
	}
	*r = append(*r, ratioGate{num: strings.TrimSpace(num), den: strings.TrimSpace(den), min: min, minCPUs: minCPUs})
	return nil
}

func load(path string) (benchFile, error) {
	var f benchFile
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	switch f.Schema {
	case "mmtag-bench/1", "mmtag-bench/2", "mmtag-bench/3", "mmtag-bench/4", "mmtag-bench/5", "mmtag-bench/6", "mmtag-bench/7", "mmtag-bench/8":
	default:
		return f, fmt.Errorf("%s: schema %q, want mmtag-bench/1 through /8", path, f.Schema)
	}
	return f, nil
}

// hasAllocGate reports whether a schema records allocs/op on every
// benchmark (so the unscaled allocation gate is meaningful).
func hasAllocGate(schema string) bool {
	return schema == "mmtag-bench/4" || schema == "mmtag-bench/5" || schema == "mmtag-bench/6" ||
		schema == "mmtag-bench/7" || schema == "mmtag-bench/8"
}

func (f benchFile) lookup(name string) (record, bool) {
	for _, r := range f.Benchmarks {
		if r.Name == name {
			return r, true
		}
	}
	return record{}, false
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_2.json", "committed baseline benchmark file")
	freshPath := flag.String("fresh", "", "freshly generated benchmark file to gate")
	tolerance := flag.Float64("tolerance", 0.20, "maximum allowed fractional ns/op regression per benchmark")
	requireSpeedup := flag.Float64("require-speedup", 2.0, "minimum Monte-Carlo speedup at 4+ workers; <= 0 skips the speedup assertion")
	speedupMinCPUs := flag.Int("speedup-min-cpus", 4, "only assert the speedup when the fresh run had at least this many CPUs")
	allowMissing := flag.Bool("allow-missing", false, "warn instead of fail when a baseline benchmark is missing from the fresh run")
	allocTolerance := flag.Float64("alloc-tolerance", 0.10, "maximum fractional allocs/op regression (mmtag-bench/4 files only)")
	allocSlack := flag.Float64("alloc-slack", 2, "absolute allocs/op headroom on top of the tolerance (absorbs testing.B jitter on tiny counts)")
	requireSweepSpeedup := flag.Float64("require-sweep-speedup", 0, "minimum AngleSweep speedup at 4 workers; <= 0 skips (asserted only at speedup-min-cpus)")
	var ratios ratioFlags
	flag.Var(&ratios, "ratio", `same-run ns/op ratio assertion "num/den>=min" over the fresh file (repeatable)`)
	trendMode := flag.Bool("trend", false, "report mode: print a markdown trend table across the BENCH_N.json files named as arguments (never fails)")
	historyMode := flag.Bool("history", false, "history-gate mode: like -trend but the last argument is the current run; exits 1 when an allocation-tracked benchmark regresses past its best historical count")
	flag.Parse()
	if *trendMode {
		if err := trend(flag.Args()); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		return
	}
	if *historyMode {
		failed, err := history(flag.Args(), *allocTolerance, *allocSlack)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		if failed {
			fmt.Println()
			fmt.Println("benchgate -history: FAIL")
			os.Exit(1)
		}
		fmt.Println()
		fmt.Println("benchgate -history: ok")
		return
	}
	if *freshPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -fresh is required")
		os.Exit(2)
	}
	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if base.Schema != fresh.Schema {
		fmt.Fprintf(os.Stderr, "benchgate: schema mismatch: baseline %s, fresh %s\n", base.Schema, fresh.Schema)
		os.Exit(2)
	}

	// Machine-speed normalization via the shared calibration benchmark.
	scale := 1.0
	bc, okB := base.lookup(calibrationName)
	fc, okF := fresh.lookup(calibrationName)
	if okB && okF && bc.NsPerOp > 0 {
		scale = fc.NsPerOp / bc.NsPerOp
		fmt.Printf("calibration: baseline %.0f ns/op, fresh %.0f ns/op → machine scale %.3f\n",
			bc.NsPerOp, fc.NsPerOp, scale)
	} else {
		fmt.Println("calibration benchmark missing from one file; comparing raw ns/op")
	}

	failed := false
	fmt.Printf("%-34s %14s %14s %9s\n", "benchmark", "baseline(ns)", "fresh(ns)", "delta")
	for _, b := range base.Benchmarks {
		if b.Name == calibrationName || b.NsPerOp <= 0 {
			continue
		}
		f, ok := fresh.lookup(b.Name)
		if !ok {
			if *allowMissing {
				fmt.Printf("%-34s %14.0f %14s %9s  skipped (missing from fresh run)\n", b.Name, b.NsPerOp, "-", "-")
			} else {
				fmt.Printf("%-34s %14.0f %14s %9s  FAIL (missing from fresh run)\n", b.Name, b.NsPerOp, "-", "-")
				failed = true
			}
			continue
		}
		allowed := b.NsPerOp * scale
		delta := f.NsPerOp/allowed - 1
		verdict := "ok"
		if delta > *tolerance {
			verdict = fmt.Sprintf("FAIL (> %.0f%% regression)", *tolerance*100)
			failed = true
		}
		fmt.Printf("%-34s %14.0f %14.0f %+8.1f%%  %s\n", b.Name, allowed, f.NsPerOp, delta*100, verdict)
	}

	// Allocation gate: allocs/op is deterministic (no machine scaling),
	// so it is compared raw. Only mmtag-bench/4 and /5 files record it;
	// on older schemas a zero count means "not measured", so the gate is
	// skipped.
	if hasAllocGate(base.Schema) {
		fmt.Printf("\n%-34s %14s %14s  %s\n", "benchmark", "base allocs", "fresh allocs", "alloc gate")
		for _, b := range base.Benchmarks {
			f, ok := fresh.lookup(b.Name)
			if !ok {
				continue // already handled (or waived) by the ns/op loop
			}
			limit := b.AllocsPerOp*(1+*allocTolerance) + *allocSlack
			verdict := "ok"
			if f.AllocsPerOp > limit {
				verdict = fmt.Sprintf("FAIL (> %.1f allowed)", limit)
				failed = true
			}
			fmt.Printf("%-34s %14.1f %14.1f  %s\n", b.Name, b.AllocsPerOp, f.AllocsPerOp, verdict)
		}
	}

	// Same-run ratio gates: both sides come from the fresh file, so the
	// asserted speedup is machine-independent — no calibration scaling.
	for _, g := range ratios {
		if g.minCPUs > 0 && fresh.NumCPU < g.minCPUs {
			fmt.Printf("ratio %s/%s: skipped (fresh run has %d CPUs, gate needs ≥ %d)\n",
				g.num, g.den, fresh.NumCPU, g.minCPUs)
			continue
		}
		num, okN := fresh.lookup(g.num)
		den, okD := fresh.lookup(g.den)
		if !okN || !okD {
			fmt.Printf("ratio %s/%s: FAIL (benchmark missing from fresh run)\n", g.num, g.den)
			failed = true
			continue
		}
		if den.NsPerOp <= 0 {
			fmt.Printf("ratio %s/%s: FAIL (denominator has no ns/op)\n", g.num, g.den)
			failed = true
			continue
		}
		got := num.NsPerOp / den.NsPerOp
		if got < g.min {
			fmt.Printf("ratio %s/%s: %.2fx — FAIL (need ≥ %.2fx)\n", g.num, g.den, got, g.min)
			failed = true
		} else {
			fmt.Printf("ratio %s/%s: %.2fx — ok (need ≥ %.2fx)\n", g.num, g.den, got, g.min)
		}
	}

	// The parallel payoff the PR exists for: ≥2× Monte-Carlo speedup at
	// 4+ workers, asserted only where the hardware can express it and
	// only for files that make the claim (-require-speedup > 0).
	if *requireSpeedup <= 0 {
		fmt.Println("speedup: assertion disabled (-require-speedup <= 0)")
	} else if fresh.NumCPU >= *speedupMinCPUs {
		best := fresh.MCSpeedup4W
		if fresh.MCSpeedupMax > best {
			best = fresh.MCSpeedupMax
		}
		if best < *requireSpeedup {
			fmt.Printf("speedup: best Monte-Carlo speedup %.2fx on %d CPUs — FAIL (need ≥ %.1fx)\n",
				best, fresh.NumCPU, *requireSpeedup)
			failed = true
		} else {
			fmt.Printf("speedup: best Monte-Carlo speedup %.2fx on %d CPUs — ok\n", best, fresh.NumCPU)
		}
	} else {
		fmt.Printf("speedup: fresh run had %d CPU(s) < %d; speedup assertion skipped\n",
			fresh.NumCPU, *speedupMinCPUs)
	}

	// The angle-sweep batching fix: parallel must not be slower than
	// sequential once the machine has cores to spend.
	if *requireSweepSpeedup > 0 {
		if fresh.NumCPU >= *speedupMinCPUs {
			if fresh.SweepSpeedup4W < *requireSweepSpeedup {
				fmt.Printf("sweep: AngleSweep speedup %.2fx at 4 workers — FAIL (need ≥ %.2fx)\n",
					fresh.SweepSpeedup4W, *requireSweepSpeedup)
				failed = true
			} else {
				fmt.Printf("sweep: AngleSweep speedup %.2fx at 4 workers — ok\n", fresh.SweepSpeedup4W)
			}
		} else {
			fmt.Printf("sweep: fresh run had %d CPU(s) < %d; sweep assertion skipped\n",
				fresh.NumCPU, *speedupMinCPUs)
		}
	}

	if failed {
		fmt.Println("benchgate: FAIL")
		os.Exit(1)
	}
	fmt.Println("benchgate: ok")
}

// trend renders the cross-schema markdown report: one ns/op table over
// every benchmark seen in any input file (rows in first-seen order,
// columns in argument order), then an allocs/op table restricted to the
// files whose schema records allocation counts.
func trend(paths []string) error {
	if len(paths) == 0 {
		return fmt.Errorf("-trend needs at least one BENCH_N.json argument")
	}
	type column struct {
		path string
		file benchFile
	}
	cols := make([]column, 0, len(paths))
	for _, p := range paths {
		f, err := load(p)
		if err != nil {
			return err
		}
		cols = append(cols, column{path: p, file: f})
	}

	// Union of benchmark names, in first-seen order across the history.
	var names []string
	seen := make(map[string]bool)
	for _, c := range cols {
		for _, r := range c.file.Benchmarks {
			if !seen[r.Name] {
				seen[r.Name] = true
				names = append(names, r.Name)
			}
		}
	}

	fmt.Println("## Benchmark trend (ns/op)")
	fmt.Println()
	fmt.Print("| benchmark |")
	for _, c := range cols {
		fmt.Printf(" %s (%s) |", c.path, c.file.Schema)
	}
	fmt.Println()
	fmt.Print("|---|")
	for range cols {
		fmt.Print("---:|")
	}
	fmt.Println()
	for _, name := range names {
		fmt.Printf("| %s |", name)
		for _, c := range cols {
			if r, ok := c.file.lookup(name); ok && r.NsPerOp > 0 {
				fmt.Printf(" %.0f |", r.NsPerOp)
			} else {
				fmt.Print(" – |")
			}
		}
		fmt.Println()
	}
	fmt.Print("| *mc speedup (4w)* |")
	for _, c := range cols {
		if c.file.MCSpeedup4W > 0 {
			fmt.Printf(" %.2fx |", c.file.MCSpeedup4W)
		} else {
			fmt.Print(" – |")
		}
	}
	fmt.Println()

	// Allocation columns exist only where the schema records them.
	var allocCols []column
	for _, c := range cols {
		if hasAllocGate(c.file.Schema) {
			allocCols = append(allocCols, c)
		}
	}
	if len(allocCols) == 0 {
		return nil
	}
	fmt.Println()
	fmt.Println("## Allocation trend (allocs/op)")
	fmt.Println()
	fmt.Print("| benchmark |")
	for _, c := range allocCols {
		fmt.Printf(" %s |", c.path)
	}
	fmt.Println()
	fmt.Print("|---|")
	for range allocCols {
		fmt.Print("---:|")
	}
	fmt.Println()
	for _, name := range names {
		any := false
		row := fmt.Sprintf("| %s |", name)
		for _, c := range allocCols {
			if r, ok := c.file.lookup(name); ok {
				row += fmt.Sprintf(" %.1f |", r.AllocsPerOp)
				any = true
			} else {
				row += " – |"
			}
		}
		if any {
			fmt.Println(row)
		}
	}
	return nil
}

// tracksAllocs reports whether a record's allocation count is a real
// measurement: schemas with the alloc gate record every benchmark (zero
// means zero), while on earlier schemas only a positive count proves the
// run measured allocations at all.
func tracksAllocs(schema string, r record) bool {
	return hasAllocGate(schema) || r.AllocsPerOp > 0
}

// history renders the cross-PR trend report and gates the current run
// against the best value each metric ever recorded. The last path is
// the current run; the ones before it are the committed BENCH_N files in
// PR order.
//
// ns/op rows are rescaled onto the current machine through the shared
// calibration benchmark (columns without one print raw, marked with *)
// and the delta against the best scaled historical value is reported —
// informationally, because even calibrated ns/op carries cross-machine
// noise. allocs/op is machine-independent, so the current count must not
// exceed the best historical count by more than tol (fractional) plus
// slack (absolute); any benchmark that does fails the gate.
func history(paths []string, tol, slack float64) (failed bool, err error) {
	if len(paths) < 2 {
		return false, fmt.Errorf("-history needs the BENCH_N files plus the current run (last argument)")
	}
	type column struct {
		path  string
		file  benchFile
		scale float64 // multiply this column's ns/op by scale to land on the current machine
	}
	cols := make([]column, 0, len(paths))
	for _, p := range paths {
		f, err := load(p)
		if err != nil {
			return false, err
		}
		cols = append(cols, column{path: p, file: f, scale: 0})
	}
	cur := &cols[len(cols)-1]
	cur.scale = 1
	if cal, ok := cur.file.lookup(calibrationName); ok && cal.NsPerOp > 0 {
		for i := range cols[:len(cols)-1] {
			if c, ok := cols[i].file.lookup(calibrationName); ok && c.NsPerOp > 0 {
				cols[i].scale = cal.NsPerOp / c.NsPerOp
			}
		}
	}

	// Union of benchmark names in first-seen order across the history.
	var names []string
	seen := make(map[string]bool)
	for _, c := range cols {
		for _, r := range c.file.Benchmarks {
			if !seen[r.Name] {
				seen[r.Name] = true
				names = append(names, r.Name)
			}
		}
	}

	fmt.Println("## Benchmark history (ns/op, scaled to the current machine)")
	fmt.Println()
	fmt.Print("| benchmark |")
	for _, c := range cols[:len(cols)-1] {
		fmt.Printf(" %s |", c.path)
	}
	fmt.Print(" current | best | Δ vs best |")
	fmt.Println()
	fmt.Print("|---|")
	for range cols {
		fmt.Print("---:|")
	}
	fmt.Println("---:|---:|")
	for _, name := range names {
		if name == calibrationName {
			continue
		}
		fmt.Printf("| %s |", name)
		best := 0.0
		for _, c := range cols {
			r, ok := c.file.lookup(name)
			if !ok || r.NsPerOp <= 0 {
				fmt.Print(" – |")
				continue
			}
			if c.scale > 0 {
				scaled := r.NsPerOp * c.scale
				fmt.Printf(" %.0f |", scaled)
				if best == 0 || scaled < best {
					best = scaled
				}
			} else {
				// No calibration on this column: raw, excluded from best.
				fmt.Printf(" %.0f\\* |", r.NsPerOp)
			}
		}
		curRec, ok := cur.file.lookup(name)
		if best > 0 {
			fmt.Printf(" %.0f |", best)
		} else {
			fmt.Print(" – |")
		}
		if ok && curRec.NsPerOp > 0 && best > 0 {
			fmt.Printf(" %+.1f%% |\n", (curRec.NsPerOp/best-1)*100)
		} else {
			fmt.Println(" – |")
		}
	}
	fmt.Println()
	fmt.Println("\\* raw ns/op (file carries no calibration benchmark); excluded from best")

	fmt.Println()
	fmt.Println("## Allocation history (allocs/op) — gated against best")
	fmt.Println()
	fmt.Print("| benchmark |")
	for _, c := range cols[:len(cols)-1] {
		fmt.Printf(" %s |", c.path)
	}
	fmt.Println(" current | best | gate |")
	fmt.Print("|---|")
	for range cols {
		fmt.Print("---:|")
	}
	fmt.Println("---:|---|")
	for _, name := range names {
		if name == calibrationName {
			continue
		}
		row := fmt.Sprintf("| %s |", name)
		best, haveBest := 0.0, false
		for _, c := range cols[:len(cols)-1] {
			r, ok := c.file.lookup(name)
			if !ok || !tracksAllocs(c.file.Schema, r) {
				row += " – |"
				continue
			}
			row += fmt.Sprintf(" %.1f |", r.AllocsPerOp)
			if !haveBest || r.AllocsPerOp < best {
				best, haveBest = r.AllocsPerOp, true
			}
		}
		curRec, ok := cur.file.lookup(name)
		if !ok || !tracksAllocs(cur.file.Schema, curRec) {
			if haveBest {
				// Historical-only benchmark: keep the trend row, nothing
				// to gate.
				fmt.Printf("%s – | %.1f | – |\n", row, best)
			}
			continue
		}
		row += fmt.Sprintf(" %.1f |", curRec.AllocsPerOp)
		switch {
		case !haveBest:
			row += " – | new |"
		default:
			limit := best*(1+tol) + slack
			if curRec.AllocsPerOp > limit {
				row += fmt.Sprintf(" %.1f | **FAIL** (> %.1f allowed) |", best, limit)
				failed = true
			} else {
				row += fmt.Sprintf(" %.1f | ok |", best)
			}
		}
		fmt.Println(row)
	}
	return failed, nil
}
