// Command benchgate is the CI benchmark regression gate: it compares a
// freshly generated BENCH_2.json against the committed baseline and
// fails (exit 1) when a tracked benchmark regresses beyond the
// tolerance, or when the parallel Monte-Carlo speedup the PR promises
// is missing on a machine with enough cores to show it.
//
// Cross-machine noise: raw ns/op is meaningless between a laptop and a
// CI runner, so when both files carry the single-threaded
// calibration_ook_modem record the gate rescales the baseline by the
// calibration ratio before comparing. On the same machine the ratio is
// ≈1 and the gate degrades to a plain comparison.
//
// Allocations are not subject to machine noise, so allocs/op is gated
// unscaled: mmtag-bench/4 files carry allocs_per_op and bytes_per_op on
// every record, and a fresh run may not exceed the baseline's count by
// more than -alloc-tolerance (fractional) plus -alloc-slack (absolute,
// absorbing testing.B accounting jitter on tiny counts).
//
// Usage:
//
//	benchgate -baseline BENCH_2.json -fresh fresh.json [-tolerance 0.20]
//	          [-require-speedup 2.0] [-speedup-min-cpus 4] [-allow-missing]
//	          [-alloc-tolerance 0.10] [-alloc-slack 2]
//	          [-require-sweep-speedup 1.0]
//	benchgate -trend BENCH_2.json BENCH_3.json BENCH_4.json BENCH_5.json
//
// mmtag-bench/2 (parallel sweeps), mmtag-bench/3 (event-log overhead),
// mmtag-bench/4 (allocation profile) and mmtag-bench/5 (signal-tap
// overhead) files are accepted; the two files must share a schema. Pass
// -require-speedup 0 for files that make no parallel-speedup claim
// (BENCH_3.json), and -allow-missing to tolerate benchmarks present in
// the baseline but absent from the fresh run (e.g. a baseline generated
// by a newer tree).
//
// -trend switches to report mode: instead of gating a pair, it reads
// every file named on the command line (any mmtag-bench/* schema) and
// prints a markdown table of ns/op — and, where recorded, allocs/op —
// per benchmark across the whole BENCH_N.json history, so a PR's perf
// story is visible at a glance. Trend mode never fails the build.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

type record struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp and BytesPerOp are recorded by mmtag-bench/4 files;
	// earlier schemas omit them (zero means "no data" there, and the
	// alloc gate only runs on /4 pairs, where zero means zero).
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
}

type benchFile struct {
	Schema       string   `json:"schema"`
	NumCPU       int      `json:"num_cpu"`
	Benchmarks   []record `json:"benchmarks"`
	MCSpeedup4W  float64  `json:"mc_ber_speedup_workers_4"`
	MCSpeedupMax float64  `json:"mc_ber_speedup_workers_max"`
	// SweepSpeedup4W is the AngleSweep workers-4 over workers-1 ratio
	// recorded by mmtag-bench/4 files (the batching regression fix).
	SweepSpeedup4W float64 `json:"angle_sweep_speedup_workers_4,omitempty"`
}

// calibrationName is the pure single-thread benchmark both files must
// share for machine-speed normalization.
const calibrationName = "calibration_ook_modem"

func load(path string) (benchFile, error) {
	var f benchFile
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	switch f.Schema {
	case "mmtag-bench/2", "mmtag-bench/3", "mmtag-bench/4", "mmtag-bench/5":
	default:
		return f, fmt.Errorf("%s: schema %q, want mmtag-bench/2, /3, /4 or /5", path, f.Schema)
	}
	return f, nil
}

// hasAllocGate reports whether a schema records allocs/op on every
// benchmark (so the unscaled allocation gate is meaningful).
func hasAllocGate(schema string) bool {
	return schema == "mmtag-bench/4" || schema == "mmtag-bench/5"
}

func (f benchFile) lookup(name string) (record, bool) {
	for _, r := range f.Benchmarks {
		if r.Name == name {
			return r, true
		}
	}
	return record{}, false
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_2.json", "committed baseline benchmark file")
	freshPath := flag.String("fresh", "", "freshly generated benchmark file to gate")
	tolerance := flag.Float64("tolerance", 0.20, "maximum allowed fractional ns/op regression per benchmark")
	requireSpeedup := flag.Float64("require-speedup", 2.0, "minimum Monte-Carlo speedup at 4+ workers; <= 0 skips the speedup assertion")
	speedupMinCPUs := flag.Int("speedup-min-cpus", 4, "only assert the speedup when the fresh run had at least this many CPUs")
	allowMissing := flag.Bool("allow-missing", false, "warn instead of fail when a baseline benchmark is missing from the fresh run")
	allocTolerance := flag.Float64("alloc-tolerance", 0.10, "maximum fractional allocs/op regression (mmtag-bench/4 files only)")
	allocSlack := flag.Float64("alloc-slack", 2, "absolute allocs/op headroom on top of the tolerance (absorbs testing.B jitter on tiny counts)")
	requireSweepSpeedup := flag.Float64("require-sweep-speedup", 0, "minimum AngleSweep speedup at 4 workers; <= 0 skips (asserted only at speedup-min-cpus)")
	trendMode := flag.Bool("trend", false, "report mode: print a markdown trend table across the BENCH_N.json files named as arguments (never fails)")
	flag.Parse()
	if *trendMode {
		if err := trend(flag.Args()); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		return
	}
	if *freshPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -fresh is required")
		os.Exit(2)
	}
	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	if base.Schema != fresh.Schema {
		fmt.Fprintf(os.Stderr, "benchgate: schema mismatch: baseline %s, fresh %s\n", base.Schema, fresh.Schema)
		os.Exit(2)
	}

	// Machine-speed normalization via the shared calibration benchmark.
	scale := 1.0
	bc, okB := base.lookup(calibrationName)
	fc, okF := fresh.lookup(calibrationName)
	if okB && okF && bc.NsPerOp > 0 {
		scale = fc.NsPerOp / bc.NsPerOp
		fmt.Printf("calibration: baseline %.0f ns/op, fresh %.0f ns/op → machine scale %.3f\n",
			bc.NsPerOp, fc.NsPerOp, scale)
	} else {
		fmt.Println("calibration benchmark missing from one file; comparing raw ns/op")
	}

	failed := false
	fmt.Printf("%-34s %14s %14s %9s\n", "benchmark", "baseline(ns)", "fresh(ns)", "delta")
	for _, b := range base.Benchmarks {
		if b.Name == calibrationName || b.NsPerOp <= 0 {
			continue
		}
		f, ok := fresh.lookup(b.Name)
		if !ok {
			if *allowMissing {
				fmt.Printf("%-34s %14.0f %14s %9s  skipped (missing from fresh run)\n", b.Name, b.NsPerOp, "-", "-")
			} else {
				fmt.Printf("%-34s %14.0f %14s %9s  FAIL (missing from fresh run)\n", b.Name, b.NsPerOp, "-", "-")
				failed = true
			}
			continue
		}
		allowed := b.NsPerOp * scale
		delta := f.NsPerOp/allowed - 1
		verdict := "ok"
		if delta > *tolerance {
			verdict = fmt.Sprintf("FAIL (> %.0f%% regression)", *tolerance*100)
			failed = true
		}
		fmt.Printf("%-34s %14.0f %14.0f %+8.1f%%  %s\n", b.Name, allowed, f.NsPerOp, delta*100, verdict)
	}

	// Allocation gate: allocs/op is deterministic (no machine scaling),
	// so it is compared raw. Only mmtag-bench/4 and /5 files record it;
	// on older schemas a zero count means "not measured", so the gate is
	// skipped.
	if hasAllocGate(base.Schema) {
		fmt.Printf("\n%-34s %14s %14s  %s\n", "benchmark", "base allocs", "fresh allocs", "alloc gate")
		for _, b := range base.Benchmarks {
			f, ok := fresh.lookup(b.Name)
			if !ok {
				continue // already handled (or waived) by the ns/op loop
			}
			limit := b.AllocsPerOp*(1+*allocTolerance) + *allocSlack
			verdict := "ok"
			if f.AllocsPerOp > limit {
				verdict = fmt.Sprintf("FAIL (> %.1f allowed)", limit)
				failed = true
			}
			fmt.Printf("%-34s %14.1f %14.1f  %s\n", b.Name, b.AllocsPerOp, f.AllocsPerOp, verdict)
		}
	}

	// The parallel payoff the PR exists for: ≥2× Monte-Carlo speedup at
	// 4+ workers, asserted only where the hardware can express it and
	// only for files that make the claim (-require-speedup > 0).
	if *requireSpeedup <= 0 {
		fmt.Println("speedup: assertion disabled (-require-speedup <= 0)")
	} else if fresh.NumCPU >= *speedupMinCPUs {
		best := fresh.MCSpeedup4W
		if fresh.MCSpeedupMax > best {
			best = fresh.MCSpeedupMax
		}
		if best < *requireSpeedup {
			fmt.Printf("speedup: best Monte-Carlo speedup %.2fx on %d CPUs — FAIL (need ≥ %.1fx)\n",
				best, fresh.NumCPU, *requireSpeedup)
			failed = true
		} else {
			fmt.Printf("speedup: best Monte-Carlo speedup %.2fx on %d CPUs — ok\n", best, fresh.NumCPU)
		}
	} else {
		fmt.Printf("speedup: fresh run had %d CPU(s) < %d; speedup assertion skipped\n",
			fresh.NumCPU, *speedupMinCPUs)
	}

	// The angle-sweep batching fix: parallel must not be slower than
	// sequential once the machine has cores to spend.
	if *requireSweepSpeedup > 0 {
		if fresh.NumCPU >= *speedupMinCPUs {
			if fresh.SweepSpeedup4W < *requireSweepSpeedup {
				fmt.Printf("sweep: AngleSweep speedup %.2fx at 4 workers — FAIL (need ≥ %.2fx)\n",
					fresh.SweepSpeedup4W, *requireSweepSpeedup)
				failed = true
			} else {
				fmt.Printf("sweep: AngleSweep speedup %.2fx at 4 workers — ok\n", fresh.SweepSpeedup4W)
			}
		} else {
			fmt.Printf("sweep: fresh run had %d CPU(s) < %d; sweep assertion skipped\n",
				fresh.NumCPU, *speedupMinCPUs)
		}
	}

	if failed {
		fmt.Println("benchgate: FAIL")
		os.Exit(1)
	}
	fmt.Println("benchgate: ok")
}

// trend renders the cross-schema markdown report: one ns/op table over
// every benchmark seen in any input file (rows in first-seen order,
// columns in argument order), then an allocs/op table restricted to the
// files whose schema records allocation counts.
func trend(paths []string) error {
	if len(paths) == 0 {
		return fmt.Errorf("-trend needs at least one BENCH_N.json argument")
	}
	type column struct {
		path string
		file benchFile
	}
	cols := make([]column, 0, len(paths))
	for _, p := range paths {
		f, err := load(p)
		if err != nil {
			return err
		}
		cols = append(cols, column{path: p, file: f})
	}

	// Union of benchmark names, in first-seen order across the history.
	var names []string
	seen := make(map[string]bool)
	for _, c := range cols {
		for _, r := range c.file.Benchmarks {
			if !seen[r.Name] {
				seen[r.Name] = true
				names = append(names, r.Name)
			}
		}
	}

	fmt.Println("## Benchmark trend (ns/op)")
	fmt.Println()
	fmt.Print("| benchmark |")
	for _, c := range cols {
		fmt.Printf(" %s (%s) |", c.path, c.file.Schema)
	}
	fmt.Println()
	fmt.Print("|---|")
	for range cols {
		fmt.Print("---:|")
	}
	fmt.Println()
	for _, name := range names {
		fmt.Printf("| %s |", name)
		for _, c := range cols {
			if r, ok := c.file.lookup(name); ok && r.NsPerOp > 0 {
				fmt.Printf(" %.0f |", r.NsPerOp)
			} else {
				fmt.Print(" – |")
			}
		}
		fmt.Println()
	}
	fmt.Print("| *mc speedup (4w)* |")
	for _, c := range cols {
		if c.file.MCSpeedup4W > 0 {
			fmt.Printf(" %.2fx |", c.file.MCSpeedup4W)
		} else {
			fmt.Print(" – |")
		}
	}
	fmt.Println()

	// Allocation columns exist only where the schema records them.
	var allocCols []column
	for _, c := range cols {
		if hasAllocGate(c.file.Schema) {
			allocCols = append(allocCols, c)
		}
	}
	if len(allocCols) == 0 {
		return nil
	}
	fmt.Println()
	fmt.Println("## Allocation trend (allocs/op)")
	fmt.Println()
	fmt.Print("| benchmark |")
	for _, c := range allocCols {
		fmt.Printf(" %s |", c.path)
	}
	fmt.Println()
	fmt.Print("|---|")
	for range allocCols {
		fmt.Print("---:|")
	}
	fmt.Println()
	for _, name := range names {
		any := false
		row := fmt.Sprintf("| %s |", name)
		for _, c := range allocCols {
			if r, ok := c.file.lookup(name); ok {
				row += fmt.Sprintf(" %.1f |", r.AllocsPerOp)
				any = true
			} else {
				row += " – |"
			}
		}
		if any {
			fmt.Println(row)
		}
	}
	return nil
}
