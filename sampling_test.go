// Facade-level tests for the sampling / alerting / run-diff layer:
// EnableSampling folding a real workload into the virtual-time store,
// WriteRunDir archiving timeseries.json + alerts.jsonl under manifest
// digests, and DiffRunDirs gating two archived runs.
package mmtag_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/mmtag/mmtag"
)

func sampledRun(t *testing.T) *mmtag.Sampler {
	t.Helper()
	smp, err := mmtag.EnableSampling(1e-6)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		mmtag.DisableSampling()
		mmtag.DisableMetrics()
		mmtag.DisableEvents()
	})
	link, err := mmtag.NewLink(mmtag.Feet(4))
	if err != nil {
		t.Fatal(err)
	}
	src := mmtag.NewSource(11)
	payload := make([]byte, 64)
	for _, bw := range mmtag.PaperBandwidths()[:1] {
		if _, err := link.RunWaveform(payload, bw, src); err != nil {
			t.Fatal(err)
		}
	}
	return smp
}

func TestEnableSamplingCollectsSeries(t *testing.T) {
	smp := sampledRun(t)
	if !mmtag.SamplingEnabled() {
		t.Fatal("EnableSampling should activate the sampler")
	}
	st := smp.Stats()
	if st.Series == 0 || st.Updates == 0 {
		t.Fatalf("waveform run recorded nothing: %+v", st)
	}
	out := string(smp.JSON())
	if !strings.Contains(out, `"schema":"mmtag-timeseries/1"`) {
		t.Fatalf("timeseries JSON missing schema header:\n%.200s", out)
	}
}

func TestEnableSamplingRejectsBadInterval(t *testing.T) {
	t.Cleanup(func() {
		mmtag.DisableSampling()
		mmtag.DisableMetrics()
	})
	if _, err := mmtag.EnableSampling(0); err == nil {
		t.Fatal("dt=0 must be rejected")
	}
}

func TestWriteRunDirArchivesTimeseriesAndAlerts(t *testing.T) {
	sampledRun(t)
	dir := t.TempDir()
	man, err := mmtag.WriteRunDir(dir, mmtag.RunInfo{Experiment: "facade-test"})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"timeseries.json", "alerts.jsonl"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("%s not archived: %v", name, err)
		}
		if _, ok := man.Files[name]; !ok {
			t.Fatalf("%s not digested in the manifest", name)
		}
	}
	if err := mmtag.VerifyRunDir(dir); err != nil {
		t.Fatal(err)
	}
}

func TestDiffRunDirsGatesRegressions(t *testing.T) {
	run := func(bits int) string {
		reg := mmtag.Metrics()
		t.Cleanup(mmtag.DisableMetrics)
		reg.Add("core_bit_errors_total", float64(bits/100))
		reg.Add("core_bursts_decoded_total", 40)
		dir := t.TempDir()
		if _, err := mmtag.WriteRunDir(dir, mmtag.RunInfo{Experiment: "diff-test"}); err != nil {
			t.Fatal(err)
		}
		mmtag.DisableMetrics()
		return dir
	}
	a, b, worse := run(10000), run(10000), run(90000)
	res, err := mmtag.DiffRunDirs(a, b, mmtag.RunDiffOptions{RelTol: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != 0 {
		t.Fatalf("identical runs must pass:\n%s", res.Table.Plain())
	}
	res, err = mmtag.DiffRunDirs(a, worse, mmtag.RunDiffOptions{RelTol: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures == 0 {
		t.Fatalf("9x bit errors must fail the gate:\n%s", res.Table.Plain())
	}
}

func TestDefaultAlertRulesEvaluate(t *testing.T) {
	smp := sampledRun(t)
	eng, err := mmtag.NewAlertEngine(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(eng.Rules()) != len(mmtag.DefaultAlertRules()) {
		t.Fatal("nil rules must load the default set")
	}
	_, states := eng.Evaluate(smp.Snapshot())
	if len(states) != len(eng.Rules()) {
		t.Fatalf("got %d rule states for %d rules", len(states), len(eng.Rules()))
	}
}
