package mmtag_test

import (
	"math"
	"testing"

	"github.com/mmtag/mmtag"
)

func TestFacadeQuickstart(t *testing.T) {
	link, err := mmtag.NewLink(mmtag.Feet(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := link.ComputeBudget()
	if err != nil {
		t.Fatal(err)
	}
	if got := mmtag.FormatRate(b.RateBps); got != "1.00 Gb/s" {
		t.Errorf("quickstart rate %q, want \"1.00 Gb/s\" (the paper's headline)", got)
	}
}

func TestFacadeNetworkScan(t *testing.T) {
	tg, err := mmtag.NewTag(7, mmtag.Pose{Pos: mmtag.Vec{X: 1.2}, Heading: math.Pi})
	if err != nil {
		t.Fatal(err)
	}
	n := mmtag.NewNetwork(tg)
	cb, err := mmtag.NewCodebook(-0.5, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	readings, err := n.Scan(cb)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, br := range readings {
		for _, tr := range br.Tags {
			if tr.TagID == 7 {
				found = true
			}
		}
	}
	if !found {
		t.Error("scan should find the tag")
	}
	sdm, err := mmtag.ScheduleSDM(readings, mmtag.DefaultSDMConfig(), mmtag.NewSource(1))
	if err != nil {
		t.Fatal(err)
	}
	if sdm.AggregateBps <= 0 {
		t.Error("scheduled network should carry traffic")
	}
}

func TestFacadeVanAtta(t *testing.T) {
	va, err := mmtag.NewVanAtta(6, 24e9)
	if err != nil {
		t.Fatal(err)
	}
	if e := va.RetroErrorDeg(0.4, 24e9); e > 2 {
		t.Errorf("retro error %g°", e)
	}
	if _, err := mmtag.NewVanAtta(3, 24e9); err == nil {
		t.Error("odd element count must fail through the facade too")
	}
}

func TestFacadeExperimentsWired(t *testing.T) {
	if _, err := mmtag.Figure6(11); err != nil {
		t.Error(err)
	}
	if _, err := mmtag.Beamwidth(6); err != nil {
		t.Error(err)
	}
	if _, err := mmtag.Comparison(); err != nil {
		t.Error(err)
	}
}

func TestFacadeTagN(t *testing.T) {
	tg, err := mmtag.NewTagN(1, mmtag.Pose{Pos: mmtag.Vec{X: 2}, Heading: math.Pi}, 8, 24e9)
	if err != nil {
		t.Fatal(err)
	}
	if tg.Aperture.N() != 8 {
		t.Error("element count")
	}
}

func TestPaperBandwidthsExposed(t *testing.T) {
	bws := mmtag.PaperBandwidths()
	if len(bws) != 3 || bws[0].BitRate() != 1e9 {
		t.Errorf("paper bandwidths: %+v", bws)
	}
}

// TestFacadeWorkspacePipeline covers the zero-allocation facade entry
// points: a reused Workspace must reproduce the allocating waveform
// path, and NewPipeline must hand back a usable burst decoder.
func TestFacadeWorkspacePipeline(t *testing.T) {
	link, err := mmtag.NewLink(mmtag.Feet(3))
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("facade ws")
	bw := link.Reader.Bandwidths[2]
	want, err := link.RunWaveform(payload, bw, mmtag.NewSource(21))
	if err != nil {
		t.Fatal(err)
	}
	ws := mmtag.NewWorkspace()
	for i := 0; i < 2; i++ {
		got, err := link.RunWaveformWS(ws, payload, bw, mmtag.NewSource(21))
		if err != nil {
			t.Fatal(err)
		}
		if got.Decoded != want.Decoded || got.TagID != want.TagID ||
			got.MeasuredSNRdB != want.MeasuredSNRdB {
			t.Fatalf("call %d: WS facade result diverged: %+v vs %+v", i, got, want)
		}
	}
	if p := mmtag.NewPipeline(); p == nil {
		t.Fatal("NewPipeline returned nil")
	}
}
