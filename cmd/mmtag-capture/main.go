// Command mmtag-capture synthesizes and decodes IQ captures of mmTag
// bursts — the round trip a real reader's SDR front end would make.
//
// Usage:
//
//	mmtag-capture record -out burst.iq [-range-ft 4] [-bw 200MHz]
//	                     [-payload TEXT] [-mcs ook|ask4] [-seed N]
//	                     [-serve ADDR] [-rundir DIR]
//	mmtag-capture decode -in burst.iq [-serve ADDR] [-rundir DIR]
//
// `record` places a paper-default tag at the given range, runs the full
// waveform synthesis (frame → switch waveform → channel → leakage →
// noise → calibration) and writes the capture as an MMIQ file.
// `decode` loads a capture and runs the reader pipeline on it.
//
// Both subcommands take the same observability flags as cmd/mmtag:
// -serve ADDR exposes live telemetry (and keeps the process up until
// interrupted so the endpoints stay scrapable), and -rundir DIR archives
// a self-describing run manifest after the work.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"github.com/mmtag/mmtag/internal/core"
	"github.com/mmtag/mmtag/internal/frame"
	"github.com/mmtag/mmtag/internal/iqfile"
	"github.com/mmtag/mmtag/internal/obs"
	"github.com/mmtag/mmtag/internal/obs/event"
	"github.com/mmtag/mmtag/internal/obs/manifest"
	"github.com/mmtag/mmtag/internal/obs/serve"
	"github.com/mmtag/mmtag/internal/phy"
	"github.com/mmtag/mmtag/internal/reader"
	"github.com/mmtag/mmtag/internal/rng"
	"github.com/mmtag/mmtag/internal/units"
)

// eventLogCapacity matches cmd/mmtag's bound on the in-memory event log.
const eventLogCapacity = 1 << 18

// obsFlags is the shared -serve/-rundir wiring, mirroring cmd/mmtag so
// every binary in the module is observable the same way.
type obsFlags struct {
	serveAt string
	rundir  string
}

func (o *obsFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&o.serveAt, "serve", "", "serve live telemetry (metrics, trace, events, healthz, dashboard, pprof) on this address; the process stays up after the work until interrupted")
	fs.StringVar(&o.rundir, "rundir", "", "write a self-describing run manifest (manifest.json, metrics.json, trace.json, events.jsonl) into this directory")
}

// setup enables the telemetry stores and starts the server when
// requested. The returned finish func archives the run directory and,
// when serving, blocks until interrupt so the endpoints stay up.
func (o *obsFlags) setup(experiment string, seed uint64) (func() error, error) {
	if o.serveAt == "" && o.rundir == "" {
		return func() error { return nil }, nil
	}
	started := time.Now()
	reg := obs.Enable()
	evLog := event.New(eventLogCapacity)
	event.EnableWith(evLog)
	var running *serve.Running
	if o.serveAt != "" {
		srv := serve.New(reg, evLog)
		srv.SetPhase(experiment)
		var err error
		running, err = srv.Start(o.serveAt)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "mmtag-capture: telemetry on http://%s/\n", running.Addr())
	}
	return func() error {
		if o.rundir != "" {
			info := manifest.RunInfo{
				Experiment: "capture/" + experiment,
				Seed:       seed,
				Args:       os.Args,
				Started:    started,
			}
			if _, err := manifest.Write(o.rundir, info, reg, evLog); err != nil {
				return err
			}
		}
		if running != nil {
			defer running.Close()
			fmt.Fprintln(os.Stderr, "mmtag-capture: serving telemetry; Ctrl-C to exit")
			sig := make(chan os.Signal, 1)
			signal.Notify(sig, os.Interrupt)
			<-sig
		}
		return nil
	}, nil
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: mmtag-capture <record|decode> [flags]")
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = record(os.Args[2:])
	case "decode":
		err = decode(os.Args[2:])
	default:
		err = fmt.Errorf("unknown subcommand %q", os.Args[1])
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmtag-capture:", err)
		os.Exit(1)
	}
}

func record(args []string) error {
	fs := flag.NewFlagSet("record", flag.ContinueOnError)
	out := fs.String("out", "burst.iq", "output capture path")
	rangeFt := fs.Float64("range-ft", 4, "tag range in feet")
	bwName := fs.String("bw", "200 MHz", `receiver bandwidth ("2 GHz", "200 MHz", "20 MHz")`)
	payload := fs.String("payload", "hello from a batteryless tag", "payload text")
	mcsName := fs.String("mcs", "ook", "payload modulation: ook or ask4")
	seed := fs.Uint64("seed", 1, "noise seed")
	var of obsFlags
	of.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	finish, err := of.setup("record", *seed)
	if err != nil {
		return err
	}
	link, err := core.NewDefaultLink(units.FeetToMeters(*rangeFt))
	if err != nil {
		return err
	}
	var bw units.ReaderBandwidth
	found := false
	for _, b := range link.Reader.Bandwidths {
		if b.Label == *bwName {
			bw, found = b, true
		}
	}
	if !found {
		return fmt.Errorf("unknown bandwidth %q", *bwName)
	}
	mcs := frame.MCSOOK
	if *mcsName == "ask4" {
		mcs = frame.MCSASK4
	} else if *mcsName != "ook" {
		return fmt.Errorf("unknown mcs %q", *mcsName)
	}
	cap, err := link.CaptureWaveform([]byte(*payload), mcs, bw, rng.New(*seed))
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	hdr := iqfile.Header{
		SampleRateHz: cap.SampleRateHz,
		CarrierHz:    link.Reader.FreqHz,
		Samples:      uint64(len(cap.Samples)),
	}
	if err := iqfile.Write(f, hdr, cap.Samples); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s: %d samples at %.0f Msps, tag at %.1f ft (Pr %.1f dBm, %s)\n",
		*out, len(cap.Samples), cap.SampleRateHz/1e6, *rangeFt,
		cap.Budget.ReceivedDBm, units.FormatRate(cap.Budget.RateBps))
	return finish()
}

func decode(args []string) error {
	fs := flag.NewFlagSet("decode", flag.ContinueOnError)
	in := fs.String("in", "burst.iq", "input capture path")
	var of obsFlags
	of.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	finish, err := of.setup("decode", 0)
	if err != nil {
		return err
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	hdr, samples, err := iqfile.Read(f)
	if err != nil {
		return err
	}
	w, err := phy.NewRectWaveform(core.SamplesPerSymbol)
	if err != nil {
		return err
	}
	dec, stats, err := reader.DecodeBurst(samples, w)
	if err != nil {
		// A failed decode is the interesting case for a flight-recorder
		// capture: archive the telemetry before reporting it.
		if ferr := finish(); ferr != nil {
			fmt.Fprintln(os.Stderr, "mmtag-capture:", ferr)
		}
		return fmt.Errorf("decode failed: %w", err)
	}
	fmt.Printf("capture: %d samples at %.0f Msps (carrier %.1f GHz)\n",
		hdr.Samples, hdr.SampleRateHz/1e6, hdr.CarrierHz/1e9)
	fmt.Printf("frame  : tag %d, MCS %v, %d payload bytes, CRC ok=%v\n",
		dec.Header.TagID, dec.Header.MCS, dec.Header.Length, dec.Trailer.OK)
	fmt.Printf("payload: %q\n", dec.Payload.Data)
	fmt.Printf("rx     : SNR ≈ %.1f dB, sync metric %.3g\n", stats.SNRdBEst, stats.PreambleMetric)
	return finish()
}
