// Command mmtag regenerates every evaluation artifact of the mmTag paper
// from the simulation library: each subcommand reproduces one figure,
// table or claim (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	mmtag <experiment> [flags]
//
// Experiments:
//
//	fig6       E1: element S11 vs frequency, switch off/on (paper Fig. 6)
//	fig7       E2: received power & data rate vs range     (paper Fig. 7)
//	retro      E3: Van Atta vs fixed-beam across incidence (Fig. 3 / Eq. 5)
//	beamwidth  E4: tag beamwidth & geometry                (paper §7)
//	compare    E5: baseline systems vs mmTag               (paper §1/§3)
//	ber        E6: OOK BER Monte-Carlo vs analytic
//	mac        E7: multi-tag SDM + Aloha network           (paper §9)
//	selfint    E8: decode health vs TX→RX isolation        (paper §9)
//	arraysize  A1: element-count ablation                  (paper §8)
//	energy     E9: batteryless feasibility (harvest vs draw)
//	anticol    E10: Aloha vs binary query tree anti-collision
//	blockage   E11: NLOS fallback when LOS is blocked (§4)
//	rateadapt  E12: OOK vs 4-ASK modulation adaptation
//	fading     E13: Rician fading margins
//	bands      E14: 24/39/60 GHz band scaling (§7 footnote)
//	coded      E15: Hamming(7,4)+interleaving coded vs uncoded BER
//	arq        E16: link-layer goodput with stop-and-wait ARQ
//	planar     E17: 2-D (planar) Van Atta vs fixed panel
//	impair     A2: line phase-error ablation
//	stream     E18: sustained streaming session (stage-parallel decode
//	           pipeline) + flow-controlled offered-load sweep; -points
//	           sets the session frame count
//	all        run every experiment in order
//	verify     re-hash a -rundir manifest (single run or grid) and fail
//	           on any digest mismatch
//	grid       run a declared experiment grid: -f experiments.json
//	           -out DIR [-workers N]; every cell is archived as a
//	           manifest-verified run directory and the deterministic
//	           artifacts are byte-identical for any worker count
//	grid-report reduce an archived grid (-rundir DIR) to grouped CSVs,
//	           markdown/LaTeX tables and SVG plots under -out DIR
//	diff       compare the metric snapshots of two run directories:
//	           -a DIR -b DIR [-tol REL] [-abs ABS] [-skip m1,m2];
//	           prints a per-metric delta table and exits nonzero when
//	           any metric moved beyond tolerance (CI regression gate)
//
// Flags:
//
//	-csv           emit CSV instead of an aligned table
//	-points N      sweep resolution where applicable
//	-seed N        randomness seed for the stochastic experiments
//	-bits N        Monte-Carlo bits for the BER experiment
//	-metrics PATH  collect metrics during the run and write them to PATH
//	               after it ("-" = stdout; .json = JSON snapshot,
//	               anything else = Prometheus text)
//	-trace PATH    collect spans during the run and write the span trace
//	               to PATH as JSON ("-" = stdout)
//	-events PATH   collect the structured event log during the run and
//	               write it to PATH as JSON Lines ("-" = stdout); the
//	               bytes are identical for any -workers count
//	-serve ADDR    serve live telemetry on ADDR while the run executes:
//	               /metrics, /metrics.json, /trace, /events, /healthz,
//	               /dashboard and /debug/pprof/ (see DESIGN.md §7)
//	-rundir DIR    write a self-describing run manifest into DIR after
//	               the run: manifest.json, metrics.json, trace.json,
//	               events.jsonl (+ flight_*.iq with -flightrec)
//	-taps          enable the signal-level observability taps: SNR, EVM,
//	               sync-offset and soft-margin histograms plus the live
//	               dashboard's constellation/spectrum snapshot
//	-flightrec K   keep the K most recent failing bursts as IQ captures
//	               (implies -taps); they are archived into -rundir as
//	               flight_*.iq + flight.json and digested in the manifest
//	-repeat N      run the experiment N times, printing output only on
//	               the first pass — keeps the process alive so -serve
//	               endpoints can be scraped mid-run
//	-workers N     parallel workers for the sweep fan-outs (default
//	               NumCPU); results are byte-identical for any N
//	-sample DT     sample every counter/gauge/histogram into a virtual-
//	               time series store at interval DT seconds; exposes
//	               /timeseries, /alerts and /stream under -serve and
//	               archives timeseries.json + alerts.jsonl in -rundir
//	               (byte-identical for any -workers count)
//	-alerts PATH   load SLO alert rules from PATH (JSON; default rules
//	               when omitted); requires -sample
//	-f PATH        grid spec file for the grid subcommand
//	-out DIR       output directory for grid / grid-report
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/mmtag/mmtag/internal/experiments"
	"github.com/mmtag/mmtag/internal/grid"
	"github.com/mmtag/mmtag/internal/obs"
	"github.com/mmtag/mmtag/internal/obs/alert"
	"github.com/mmtag/mmtag/internal/obs/event"
	"github.com/mmtag/mmtag/internal/obs/manifest"
	"github.com/mmtag/mmtag/internal/obs/serve"
	"github.com/mmtag/mmtag/internal/obs/signal"
	"github.com/mmtag/mmtag/internal/obs/tsdb"
	"github.com/mmtag/mmtag/internal/par"
	"github.com/mmtag/mmtag/internal/rundiff"
)

// eventLogCapacity bounds the in-memory event log (~40 MB worst case at
// full). Drops void the determinism guarantee, so the run warns on any.
const eventLogCapacity = 1 << 18

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "mmtag:", err)
		os.Exit(1)
	}
}

type options struct {
	csv       bool
	svg       bool
	points    int
	seed      uint64
	bits      int
	metrics   string
	trace     string
	events    string
	serveAt   string
	rundir    string
	repeat    int
	workers   int
	taps      bool
	flightrec int
	specFile  string
	outDir    string
	sample    float64
	alerts    string
	diffA     string
	diffB     string
	diffTol   float64
	diffAbs   float64
	diffSkip  string
}

// allExperiments is the "all" subcommand's order.
var allExperiments = []string{"fig6", "fig7", "retro", "beamwidth", "compare", "ber",
	"mac", "selfint", "energy", "anticol", "blockage", "rateadapt", "fading",
	"bands", "coded", "arq", "planar", "arraysize", "impair", "stream"}

func run(args []string) error {
	fs := flag.NewFlagSet("mmtag", flag.ContinueOnError)
	var opt options
	fs.BoolVar(&opt.csv, "csv", false, "emit CSV instead of an aligned table")
	fs.BoolVar(&opt.svg, "svg", false, "emit an SVG chart (fig6, fig7, retro)")
	fs.IntVar(&opt.points, "points", 0, "sweep resolution (0 = experiment default)")
	fs.Uint64Var(&opt.seed, "seed", 1, "randomness seed")
	fs.IntVar(&opt.bits, "bits", 200_000, "Monte-Carlo bits for the BER experiment")
	fs.StringVar(&opt.metrics, "metrics", "", "write collected metrics to this path after the run (\"-\" = stdout; .json = JSON snapshot, else Prometheus text)")
	fs.StringVar(&opt.trace, "trace", "", "write the collected span trace to this path as JSON (\"-\" = stdout)")
	fs.StringVar(&opt.events, "events", "", "write the structured event log to this path as JSON Lines (\"-\" = stdout)")
	fs.StringVar(&opt.serveAt, "serve", "", "serve live telemetry (metrics, trace, events, healthz, pprof) on this address while the run executes")
	fs.StringVar(&opt.rundir, "rundir", "", "write a self-describing run manifest (manifest.json, metrics.json, trace.json, events.jsonl) into this directory")
	fs.IntVar(&opt.repeat, "repeat", 1, "run the experiment this many times, printing only the first pass (keeps -serve scrapable mid-run)")
	fs.IntVar(&opt.workers, "workers", runtime.NumCPU(), "parallel workers for sweep fan-outs (results are identical for any count)")
	fs.BoolVar(&opt.taps, "taps", false, "enable signal-level observability taps (SNR/EVM/margin histograms + dashboard burst snapshot)")
	fs.IntVar(&opt.flightrec, "flightrec", 0, "keep the K most recent failing bursts as IQ captures in -rundir (implies -taps)")
	fs.StringVar(&opt.specFile, "f", "", "grid spec file (grid subcommand)")
	fs.StringVar(&opt.outDir, "out", "", "output directory (grid, grid-report subcommands)")
	fs.Float64Var(&opt.sample, "sample", 0, "sample metrics into a virtual-time series store at this interval in seconds (0 = off)")
	fs.StringVar(&opt.alerts, "alerts", "", "SLO alert rules file (JSON); requires -sample, default rules when omitted")
	fs.StringVar(&opt.diffA, "a", "", "baseline run directory (diff subcommand)")
	fs.StringVar(&opt.diffB, "b", "", "candidate run directory (diff subcommand)")
	fs.Float64Var(&opt.diffTol, "tol", 0.05, "relative tolerance for the diff gate (diff subcommand)")
	fs.Float64Var(&opt.diffAbs, "abs", 1e-9, "absolute tolerance floor for the diff gate (diff subcommand)")
	fs.StringVar(&opt.diffSkip, "skip", "", "comma-separated metric families to exclude from the diff gate")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: mmtag <fig6|fig7|retro|beamwidth|compare|ber|mac|selfint|energy|anticol|blockage|rateadapt|fading|bands|coded|arq|planar|arraysize|impair|stream|all|verify|grid|grid-report|diff> [flags]")
		fs.PrintDefaults()
	}
	if len(args) == 0 {
		fs.Usage()
		return fmt.Errorf("missing experiment name")
	}
	name := args[0]
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	// The archival subcommands run before the observability setup below:
	// verify touches no simulation code, and the grid runner must keep
	// the global obs/event/signal stores disabled so concurrent cells
	// cannot interleave into them (worker invariance of the archives).
	switch name {
	case "verify":
		// Re-hash an archived run directory (including any flight_*.iq
		// captures) against its manifest digests. Grid directories are
		// verified cell by cell.
		if opt.rundir == "" {
			return fmt.Errorf("verify: -rundir is required")
		}
		if grid.IsGridDir(opt.rundir) {
			if err := grid.VerifyDir(opt.rundir); err != nil {
				return err
			}
			fmt.Printf("verify: grid %s ok\n", opt.rundir)
			return nil
		}
		if err := manifest.Verify(opt.rundir); err != nil {
			return err
		}
		fmt.Printf("verify: %s ok\n", opt.rundir)
		return nil
	case "grid":
		if opt.specFile == "" || opt.outDir == "" {
			return fmt.Errorf("grid: -f SPEC and -out DIR are required")
		}
		spec, err := grid.Load(opt.specFile)
		if err != nil {
			return err
		}
		idx, err := grid.Run(spec, opt.outDir, opt.workers)
		if err != nil {
			return err
		}
		fmt.Printf("grid: %s: %d cells -> %s\n", spec.Name, len(idx.Cells), opt.outDir)
		return nil
	case "grid-report":
		if opt.rundir == "" || opt.outDir == "" {
			return fmt.Errorf("grid-report: -rundir DIR and -out DIR are required")
		}
		if err := grid.Report(opt.rundir, opt.outDir); err != nil {
			return err
		}
		fmt.Printf("grid-report: %s -> %s\n", opt.rundir, opt.outDir)
		return nil
	case "diff":
		if opt.diffA == "" || opt.diffB == "" {
			return fmt.Errorf("diff: -a DIR and -b DIR are required")
		}
		var skip []string
		for _, n := range strings.Split(opt.diffSkip, ",") {
			if n = strings.TrimSpace(n); n != "" {
				skip = append(skip, n)
			}
		}
		res, err := rundiff.Diff(opt.diffA, opt.diffB, rundiff.Options{
			RelTol: opt.diffTol, AbsTol: opt.diffAbs, Skip: skip,
		})
		if err != nil {
			return err
		}
		if opt.csv {
			fmt.Print(res.Table.CSV())
		} else {
			fmt.Print(res.Table.Plain())
		}
		if res.Failures > 0 {
			return fmt.Errorf("diff: %d metric(s) beyond tolerance", res.Failures)
		}
		return nil
	}
	par.SetWorkers(opt.workers)
	started := time.Now()
	if opt.alerts != "" && opt.sample == 0 {
		return fmt.Errorf("-alerts requires -sample (alert rules evaluate over sampled time series)")
	}
	var reg *obs.Registry
	if opt.metrics != "" || opt.trace != "" || opt.serveAt != "" || opt.rundir != "" || opt.sample > 0 {
		reg = obs.Enable()
	}
	var smp *tsdb.Sampler
	var eng *alert.Engine
	if opt.sample != 0 {
		var err error
		if smp, err = tsdb.Attach(reg, opt.sample); err != nil {
			return err
		}
		tsdb.EnableWith(smp)
		if opt.alerts != "" {
			rules, err := alert.LoadRulesFile(opt.alerts)
			if err != nil {
				return err
			}
			if eng, err = alert.New(rules); err != nil {
				return err
			}
		} else {
			eng = alert.Default()
		}
	}
	var evLog *event.Log
	if opt.events != "" || opt.serveAt != "" || opt.rundir != "" {
		evLog = event.New(eventLogCapacity)
		event.EnableWith(evLog)
	}
	var tap *signal.Tap
	if opt.taps || opt.flightrec > 0 {
		// The scalar taps feed obs histograms, so they need a registry
		// even when no -metrics path was given.
		if reg == nil {
			reg = obs.Enable()
		}
		tap = signal.Enable()
		if opt.flightrec > 0 {
			tap.SetFlightRecorder(opt.flightrec)
		}
	}
	var srv *serve.Server
	if opt.serveAt != "" {
		srv = serve.New(reg, evLog)
		if tap != nil {
			srv.AttachSignal(tap)
		}
		if smp != nil {
			srv.AttachTimeseries(smp)
			srv.AttachAlerts(eng)
		}
		running, err := srv.Start(opt.serveAt)
		if err != nil {
			return err
		}
		defer running.Close()
		fmt.Fprintf(os.Stderr, "mmtag: telemetry on http://%s/\n", running.Addr())
	}

	names := []string{name}
	if name == "all" {
		names = allExperiments
	}
	if opt.repeat < 1 {
		opt.repeat = 1
	}
	for pass := 0; pass < opt.repeat; pass++ {
		// Repeat passes rerun the workload for -serve watchers without
		// duplicating the report on stdout.
		out := io.Writer(os.Stdout)
		if pass > 0 {
			out = io.Discard
		}
		for _, n := range names {
			if srv != nil {
				srv.SetPhase(n)
			}
			if err := emit(out, n, opt); err != nil {
				return err
			}
			if len(names) > 1 {
				fmt.Fprintln(out)
			}
		}
	}
	if srv != nil {
		srv.SetPhase("done")
	}
	return writeObservability(reg, evLog, tap, smp, eng, started, name, opt)
}

// writeObservability dumps the run's metrics, span trace, event log and
// run manifest to the paths the -metrics / -trace / -events / -rundir
// flags name.
func writeObservability(reg *obs.Registry, evLog *event.Log, tap *signal.Tap, smp *tsdb.Sampler, eng *alert.Engine, started time.Time, experiment string, opt options) error {
	if reg == nil && evLog == nil {
		return nil
	}
	write := func(path string, data []byte) error {
		if path == "-" {
			_, err := os.Stdout.Write(data)
			return err
		}
		return os.WriteFile(path, data, 0o644)
	}
	// Alert transitions land in the event log before it is exported, so
	// -events and the rundir's events.jsonl both carry them.
	var transitions []alert.Transition
	if smp != nil && eng != nil {
		transitions, _ = eng.Evaluate(smp.Snapshot())
		alert.Emit(transitions)
		for _, tr := range transitions {
			if tr.State == "firing" {
				fmt.Fprintf(os.Stderr, "mmtag: alert %s firing at t=%.3gs (%s %s %g, threshold %g)\n",
					tr.Rule, tr.T, tr.Metric, tr.State, tr.Value, tr.Threshold)
			}
		}
	}
	if evLog != nil {
		if dropped, _ := evLog.Dropped(); dropped > 0 {
			fmt.Fprintf(os.Stderr, "mmtag: event log dropped %d events at capacity %d; "+
				"the exposition is truncated and no longer worker-count invariant\n",
				dropped, eventLogCapacity)
		}
	}
	if opt.events != "" && evLog != nil {
		var buf bytes.Buffer
		if err := evLog.WriteJSONL(&buf); err != nil {
			return fmt.Errorf("events: %w", err)
		}
		if err := write(opt.events, buf.Bytes()); err != nil {
			return fmt.Errorf("write events: %w", err)
		}
	}
	if opt.rundir != "" {
		info := manifest.RunInfo{
			Experiment: experiment,
			Seed:       opt.seed,
			Workers:    opt.workers,
			Args:       os.Args,
			Started:    started,
			Extra: map[string]string{
				"points": fmt.Sprintf("%d", opt.points),
				"bits":   fmt.Sprintf("%d", opt.bits),
				"repeat": fmt.Sprintf("%d", opt.repeat),
			},
		}
		var extra []manifest.ExtraFile
		if tap != nil {
			files, err := tap.FlightFiles()
			if err != nil {
				return fmt.Errorf("flight recorder: %w", err)
			}
			for _, f := range files {
				extra = append(extra, manifest.ExtraFile{Name: f.Name, Data: f.Data})
			}
		}
		if smp != nil {
			extra = append(extra, manifest.ExtraFile{Name: "timeseries.json", Data: smp.JSON()})
			if eng != nil {
				extra = append(extra, manifest.ExtraFile{Name: "alerts.jsonl", Data: alert.EncodeJSONL(transitions)})
			}
		}
		if _, err := manifest.Write(opt.rundir, info, reg, evLog, extra...); err != nil {
			return err
		}
	}
	if reg == nil {
		return nil
	}
	if opt.metrics != "" {
		var (
			data []byte
			err  error
		)
		if strings.HasSuffix(opt.metrics, ".json") {
			data, err = reg.Snapshot().JSON()
			data = append(data, '\n')
		} else {
			data = []byte(reg.PrometheusText())
		}
		if err != nil {
			return fmt.Errorf("metrics snapshot: %w", err)
		}
		if err := write(opt.metrics, data); err != nil {
			return fmt.Errorf("write metrics: %w", err)
		}
	}
	if opt.trace != "" {
		spans, dropped := reg.Spans()
		payload := struct {
			Spans        []obs.SpanRecord `json:"spans"`
			DroppedSpans uint64           `json:"dropped_spans,omitempty"`
		}{Spans: spans, DroppedSpans: dropped}
		data, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			return fmt.Errorf("trace snapshot: %w", err)
		}
		data = append(data, '\n')
		if err := write(opt.trace, data); err != nil {
			return fmt.Errorf("write trace: %w", err)
		}
	}
	return nil
}

func emit(w io.Writer, name string, opt options) error {
	if opt.svg {
		return emitSVG(w, name, opt)
	}
	tab, err := tableFor(name, opt)
	if err != nil {
		return err
	}
	if opt.csv {
		fmt.Fprint(w, tab.CSV())
	} else {
		fmt.Fprint(w, tab.Render())
	}
	return nil
}

// emitSVG renders the chart-capable experiments as SVG.
func emitSVG(w io.Writer, name string, opt options) error {
	var (
		svg string
		err error
	)
	switch name {
	case "fig6":
		r, e := experiments.Figure6(opt.points)
		if e != nil {
			return e
		}
		svg, err = r.Chart().SVG()
	case "fig7":
		r, e := experiments.Figure7(opt.points)
		if e != nil {
			return e
		}
		svg, err = r.Chart().SVG()
	case "retro":
		r, e := experiments.Retrodirectivity(opt.points)
		if e != nil {
			return e
		}
		svg, err = r.Chart().SVG()
	default:
		return fmt.Errorf("experiment %q has no SVG rendering (fig6, fig7, retro do)", name)
	}
	if err != nil {
		return err
	}
	fmt.Fprint(w, svg)
	return nil
}

func tableFor(name string, opt options) (experiments.Table, error) {
	switch name {
	case "fig6":
		r, err := experiments.Figure6(opt.points)
		if err != nil {
			return experiments.Table{}, err
		}
		return r.Table(), nil
	case "fig7":
		r, err := experiments.Figure7(opt.points)
		if err != nil {
			return experiments.Table{}, err
		}
		return r.Table(), nil
	case "retro":
		r, err := experiments.Retrodirectivity(opt.points)
		if err != nil {
			return experiments.Table{}, err
		}
		return r.Table(), nil
	case "beamwidth":
		r, err := experiments.Beamwidth(6)
		if err != nil {
			return experiments.Table{}, err
		}
		return r.Table(), nil
	case "compare":
		r, err := experiments.Comparison()
		if err != nil {
			return experiments.Table{}, err
		}
		return r.Table(), nil
	case "ber":
		r, err := experiments.BERValidation(opt.bits, opt.seed)
		if err != nil {
			return experiments.Table{}, err
		}
		return r.Table(), nil
	case "mac":
		r, err := experiments.MultiTag(nil, opt.seed)
		if err != nil {
			return experiments.Table{}, err
		}
		return r.Table(), nil
	case "selfint":
		r, err := experiments.SelfInterference(opt.seed)
		if err != nil {
			return experiments.Table{}, err
		}
		return r.Table(), nil
	case "energy":
		r, err := experiments.EnergyFeasibility(opt.points)
		if err != nil {
			return experiments.Table{}, err
		}
		return r.Table(), nil
	case "anticol":
		r, err := experiments.AntiCollision(nil, 0, opt.seed)
		if err != nil {
			return experiments.Table{}, err
		}
		return r.Table(), nil
	case "blockage":
		r, err := experiments.Blockage()
		if err != nil {
			return experiments.Table{}, err
		}
		return r.Table(), nil
	case "rateadapt":
		r, err := experiments.RateAdaptation(opt.points)
		if err != nil {
			return experiments.Table{}, err
		}
		return r.Table(), nil
	case "fading":
		r, err := experiments.FadingMargin(opt.seed)
		if err != nil {
			return experiments.Table{}, err
		}
		return r.Table(), nil
	case "bands":
		r, err := experiments.BandScaling()
		if err != nil {
			return experiments.Table{}, err
		}
		return r.Table(), nil
	case "coded":
		r, err := experiments.CodedBER(opt.bits, opt.seed)
		if err != nil {
			return experiments.Table{}, err
		}
		return r.Table(), nil
	case "arq":
		r, err := experiments.ARQGoodput(opt.points, opt.seed)
		if err != nil {
			return experiments.Table{}, err
		}
		return r.Table(), nil
	case "planar":
		r, err := experiments.PlanarTag()
		if err != nil {
			return experiments.Table{}, err
		}
		return r.Table(), nil
	case "arraysize":
		r, err := experiments.ArraySizeAblation(nil)
		if err != nil {
			return experiments.Table{}, err
		}
		return r.Table(), nil
	case "impair":
		r, err := experiments.ImpairmentAblation(nil, 0, opt.seed)
		if err != nil {
			return experiments.Table{}, err
		}
		return r.Table(), nil
	case "stream":
		r, err := experiments.StreamThroughput(opt.points, opt.seed)
		if err != nil {
			return experiments.Table{}, err
		}
		return r.Table(), nil
	default:
		return experiments.Table{}, fmt.Errorf("unknown experiment %q", name)
	}
}
