// Command mmtag-s1p exports the simulated tag element's one-port
// S-parameters (the paper's Fig. 6 sweeps) as Touchstone v1 .s1p files —
// the interchange format VNAs and RF CAD tools read — so the simulated
// curves can be overlaid on real measurements.
//
// Usage:
//
//	mmtag-s1p [-dir OUT] [-points N] [-start GHz] [-stop GHz]
//
// It writes OUT/element_switch_off.s1p and OUT/element_switch_on.s1p.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/mmtag/mmtag/internal/circuit"
)

func main() {
	dir := flag.String("dir", ".", "output directory")
	points := flag.Int("points", 201, "sweep points")
	start := flag.Float64("start", 23.5, "start frequency (GHz)")
	stop := flag.Float64("stop", 24.5, "stop frequency (GHz)")
	flag.Parse()
	if err := run(*dir, *points, *start*1e9, *stop*1e9); err != nil {
		fmt.Fprintln(os.Stderr, "mmtag-s1p:", err)
		os.Exit(1)
	}
}

func run(dir string, points int, startHz, stopHz float64) error {
	elem := circuit.DefaultPatchElement()
	freq, _, _, err := elem.S11Sweep(startHz, stopHz, points)
	if err != nil {
		return err
	}
	for _, state := range []struct {
		name string
		on   bool
	}{
		{"element_switch_off.s1p", false},
		{"element_switch_on.s1p", true},
	} {
		pts := make([]circuit.OnePortPoint, len(freq))
		for i, f := range freq {
			pts[i] = circuit.OnePortPoint{FreqHz: f, S11: elem.Gamma(f, state.on)}
		}
		path := filepath.Join(dir, state.name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := circuit.WriteS1P(f, elem.Z0, pts); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d points, %.2f–%.2f GHz)\n", path, points, startHz/1e9, stopHz/1e9)
	}
	return nil
}
