package mmtag_test

import (
	"bytes"
	"math"
	"testing"

	"github.com/mmtag/mmtag"
	"github.com/mmtag/mmtag/internal/core"
	"github.com/mmtag/mmtag/internal/frame"
	"github.com/mmtag/mmtag/internal/iqfile"
	"github.com/mmtag/mmtag/internal/phy"
	"github.com/mmtag/mmtag/internal/reader"
	"github.com/mmtag/mmtag/internal/units"
)

// TestCaptureFileRoundTrip is the cmd/mmtag-capture path as a library
// test: synthesize a burst capture, serialize it through the MMIQ
// format, read it back, and decode with the reader pipeline.
func TestCaptureFileRoundTrip(t *testing.T) {
	link, err := mmtag.NewLink(mmtag.Feet(4))
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("persisted through a file")
	cap, err := link.CaptureWaveform(payload, frame.MCSOOK, link.Reader.Bandwidths[1], mmtag.NewSource(5))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	hdr := iqfile.Header{
		SampleRateHz: cap.SampleRateHz,
		CarrierHz:    link.Reader.FreqHz,
		Samples:      uint64(len(cap.Samples)),
	}
	if err := iqfile.Write(&buf, hdr, cap.Samples); err != nil {
		t.Fatal(err)
	}
	got, samples, err := iqfile.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SampleRateHz != cap.SampleRateHz {
		t.Errorf("sample rate %g", got.SampleRateHz)
	}
	w, err := phy.NewRectWaveform(core.SamplesPerSymbol)
	if err != nil {
		t.Fatal(err)
	}
	dec, _, err := reader.DecodeBurst(samples, w)
	if err != nil {
		t.Fatal(err)
	}
	// float32 quantization in the file must not cost a single bit.
	if !dec.Trailer.OK || !bytes.Equal(dec.Payload.Data, payload) {
		t.Errorf("decoded %q ok=%v after the file round trip", dec.Payload.Data, dec.Trailer.OK)
	}
}

// TestBudgetMatchesClosedForm cross-checks core.ComputeBudget against the
// closed-form units.BackscatterReceivedDBm when fed the equivalent
// parameters — the two independent derivations of paper Fig. 7 must
// agree.
func TestBudgetMatchesClosedForm(t *testing.T) {
	for _, ft := range []float64{2, 4, 8, 12} {
		link, err := mmtag.NewLink(mmtag.Feet(ft))
		if err != nil {
			t.Fatal(err)
		}
		b, err := link.ComputeBudget()
		if err != nil {
			t.Fatal(err)
		}
		// Closed form: the tag's two-pass response 20·log10|α0| plays the
		// role of 2·Gtag − (through losses); feed it directly with
		// tagLossDB = CalibrationLossDB.
		closed := units.BackscatterReceivedDBm(
			link.Reader.TXPowerDBm(),
			b.TXGainDB, b.RXGainDB,
			b.TagResponseDB/2, // per-pass tag response
			core.CalibrationLossDB,
			b.RangeM,
			units.Wavelength(link.Reader.FreqHz),
		)
		if math.Abs(closed-b.ReceivedDBm) > 1e-9 {
			t.Errorf("%g ft: closed form %.3f vs budget %.3f dBm", ft, closed, b.ReceivedDBm)
		}
	}
}

// TestShannonBoundsRateTable: the paper's OOK rate table must sit under
// the Shannon capacity at every Fig. 7 operating point.
func TestShannonBoundsRateTable(t *testing.T) {
	for ft := 2.0; ft <= 12; ft++ {
		link, _ := mmtag.NewLink(mmtag.Feet(ft))
		b, err := link.ComputeBudget()
		if err != nil {
			t.Fatal(err)
		}
		if !b.Linked {
			continue
		}
		cap := units.ShannonCapacityBps(b.RateBandwidth.BandwidthHz, b.SNRdB[b.RateBandwidth.Label])
		if b.RateBps >= cap {
			t.Errorf("%g ft: table rate %g ≥ Shannon %g", ft, b.RateBps, cap)
		}
	}
}
