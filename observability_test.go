// Facade-level tests for the observability layer: enabling metrics via
// mmtag.Metrics() and verifying that one pass through the system's hot
// paths produces labeled series from every instrumented package plus a
// span trace.
package mmtag_test

import (
	"math"
	"strings"
	"testing"

	"github.com/mmtag/mmtag"
	"github.com/mmtag/mmtag/internal/mac"
	"github.com/mmtag/mmtag/internal/rng"
)

func TestMetricsDisabledByDefault(t *testing.T) {
	if mmtag.MetricsEnabled() {
		t.Fatal("metrics should be off until Metrics() is called")
	}
}

func TestFacadeMetricsSpanFourPackages(t *testing.T) {
	reg := mmtag.Metrics()
	t.Cleanup(mmtag.DisableMetrics)
	if !mmtag.MetricsEnabled() {
		t.Fatal("Metrics() should enable collection")
	}
	if mmtag.Metrics() != reg {
		t.Fatal("Metrics() should be idempotent")
	}

	// One pass through each subsystem's hot path.
	link, err := mmtag.NewLink(mmtag.Feet(4))
	if err != nil {
		t.Fatal(err)
	}
	src := mmtag.NewSource(1)
	if _, err := link.RunWaveform(make([]byte, 16), link.Reader.Bandwidths[1], src); err != nil {
		t.Fatal(err)
	}
	tag1, err := mmtag.NewTag(1, mmtag.Pose{Pos: mmtag.Vec{X: 1.5}, Heading: math.Pi})
	if err != nil {
		t.Fatal(err)
	}
	net := mmtag.NewNetwork(tag1)
	cb, err := mmtag.NewCodebook(-0.5, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Scan(cb); err != nil {
		t.Fatal(err)
	}
	if _, err := mac.RunAloha(8, mac.DefaultAlohaConfig(), rng.New(3)); err != nil {
		t.Fatal(err)
	}
	if _, err := mac.RunARQ(link, link.Reader.Bandwidths[2], 2, mac.DefaultARQConfig(), rng.New(4)); err != nil {
		t.Fatal(err)
	}

	snap := mmtag.Snapshot()
	if snap.SeriesCount() < 10 {
		t.Errorf("snapshot has %d series, want ≥ 10", snap.SeriesCount())
	}
	pkgs := map[string]bool{}
	for _, m := range snap.Metrics {
		for _, prefix := range []string{"core_", "reader_", "mac_", "sim_"} {
			if strings.HasPrefix(m.Name, prefix) {
				pkgs[prefix] = true
			}
		}
	}
	for _, prefix := range []string{"core_", "reader_", "mac_", "sim_"} {
		if !pkgs[prefix] {
			t.Errorf("no %s* series in snapshot", prefix)
		}
	}
	if len(snap.Spans) == 0 {
		t.Error("no spans collected")
	}
	// Span parentage: the reader pipeline stages hang off reader.decode.
	byID := map[uint64]string{}
	for _, sp := range snap.Spans {
		byID[sp.ID] = sp.Name
	}
	childOK := false
	for _, sp := range snap.Spans {
		if sp.Name == "reader.sync" && byID[sp.ParentID] == "reader.decode" {
			childOK = true
		}
	}
	if !childOK {
		t.Error("reader.sync span is not parented under reader.decode")
	}

	// Both exposition formats render the same registry.
	text := mmtag.MetricsText()
	if !strings.Contains(text, "core_bursts_attempted_total") ||
		!strings.Contains(text, "# TYPE core_snr_est_db histogram") {
		t.Errorf("Prometheus exposition incomplete:\n%.400s", text)
	}
	if _, err := snap.JSON(); err != nil {
		t.Errorf("JSON snapshot: %v", err)
	}
}

// The waveform path must keep working identically whether or not the
// registry is installed — observability must never perturb physics.
func TestMetricsDoNotPerturbResults(t *testing.T) {
	run := func() mmtag.WaveformResult {
		link, err := mmtag.NewLink(mmtag.Feet(4))
		if err != nil {
			t.Fatal(err)
		}
		res, err := link.RunWaveform(make([]byte, 32), link.Reader.Bandwidths[1], mmtag.NewSource(7))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	mmtag.DisableMetrics()
	plain := run()
	mmtag.Metrics()
	t.Cleanup(mmtag.DisableMetrics)
	instrumented := run()
	if plain.Decoded != instrumented.Decoded ||
		plain.BitErrors != instrumented.BitErrors ||
		plain.MeasuredSNRdB != instrumented.MeasuredSNRdB {
		t.Errorf("metrics changed the measurement: %+v vs %+v", plain, instrumented)
	}
}
