package mmtag_test

import (
	"math"
	"testing"

	"github.com/mmtag/mmtag"
	"github.com/mmtag/mmtag/internal/frame"
)

func TestFacadeCaptureWaveform(t *testing.T) {
	link, err := mmtag.NewLink(mmtag.Feet(4))
	if err != nil {
		t.Fatal(err)
	}
	cap, err := link.CaptureWaveform([]byte("x"), frame.MCSOOK, link.Reader.Bandwidths[1], mmtag.NewSource(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(cap.Samples) == 0 || cap.SampleRateHz <= 0 {
		t.Errorf("capture: %d samples at %g", len(cap.Samples), cap.SampleRateHz)
	}
	if cap.BandwidthLabel != "200 MHz" {
		t.Errorf("bandwidth label %q", cap.BandwidthLabel)
	}
}

func TestFacadeFadingLink(t *testing.T) {
	link, _ := mmtag.NewLink(mmtag.Feet(4))
	link.Fading = &mmtag.Fading{KdB: 15, DopplerHz: 100}
	res, err := link.RunWaveform([]byte("fade"), link.Reader.Bandwidths[2], mmtag.NewSource(3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Decoded {
		t.Error("K=15 dB fading at 4 ft / 20 MHz should still decode")
	}
}

func TestFacadeExperimentDriversWired(t *testing.T) {
	// Every extension driver must be reachable through the facade.
	if _, err := mmtag.EnergyFeasibility(3); err != nil {
		t.Error(err)
	}
	if _, err := mmtag.AntiCollision([]int{4}, 3, 1); err != nil {
		t.Error(err)
	}
	if _, err := mmtag.Blockage(); err != nil {
		t.Error(err)
	}
	if _, err := mmtag.RateAdaptation(3); err != nil {
		t.Error(err)
	}
	if _, err := mmtag.BandScaling(); err != nil {
		t.Error(err)
	}
	if _, err := mmtag.PlanarTag(); err != nil {
		t.Error(err)
	}
	if _, err := mmtag.CodedBER(196, 1); err != nil {
		t.Error(err)
	}
	if _, err := mmtag.ARQGoodput(1, 1); err != nil {
		t.Error(err)
	}
}

func TestFacadeSegmentAndEnvironment(t *testing.T) {
	link, _ := mmtag.NewLink(2)
	link.Env.Blockers = []mmtag.Segment{{A: mmtag.Vec{X: 1, Y: -1}, B: mmtag.Vec{X: 1, Y: 1}}}
	b, err := link.ComputeBudget()
	if err != nil {
		t.Fatal(err)
	}
	if !b.Severed {
		t.Error("facade-built blocker did not sever the link")
	}
}

func TestFacadeTraceAndMobility(t *testing.T) {
	tr := mmtag.NewTrace("t", "v")
	if err := tr.Add(0, 1); err != nil {
		t.Fatal(err)
	}
	m := mmtag.Mobility{Waypoints: []mmtag.Vec{{}, {X: 2}}, SpeedMps: 1}
	if p := m.PositionAt(1); math.Abs(p.X-1) > 1e-12 {
		t.Errorf("mobility position %v", p)
	}
}
