# mmtag build/test/reproduction targets. Everything is stdlib-only Go.

GO ?= go

.PHONY: all build test race bench bench-json vet fmt experiments figures clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Regenerate the outputs EXPERIMENTS.md records.
outputs:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Machine-readable instrumentation-overhead benchmarks (BENCH_1.json).
bench-json:
	MMTAG_BENCH_JSON=$(CURDIR)/BENCH_1.json $(GO) test -run 'TestWriteBenchJSON' -v .

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

# Every evaluation artifact of the paper, as text tables.
experiments:
	$(GO) run ./cmd/mmtag all

# The paper's two evaluation figures as SVG images.
figures:
	$(GO) run ./cmd/mmtag fig6 -svg > fig6.svg
	$(GO) run ./cmd/mmtag fig7 -svg > fig7.svg
	$(GO) run ./cmd/mmtag retro -svg > retro.svg

clean:
	rm -f fig6.svg fig7.svg retro.svg test_output.txt bench_output.txt
