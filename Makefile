# mmtag build/test/reproduction targets. Everything is stdlib-only Go.

GO ?= go

.PHONY: all build test race bench bench-json bench-json1 bench-json3 bench-json4 bench-json5 bench-json6 bench-json7 bench-json8 bench-gate bench-gate3 bench-gate4 bench-gate5 bench-gate6 bench-gate7 bench-gate8 bench-trend bench-history grid-smoke vet fmt experiments figures clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Regenerate the outputs EXPERIMENTS.md records.
outputs:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Machine-readable parallel-sweep benchmarks (BENCH_2.json). Override
# BENCH_OUT to write elsewhere (the CI bench job generates a fresh file
# and gates it against the committed baseline with tools/benchgate).
BENCH_OUT ?= $(CURDIR)/BENCH_2.json
bench-json:
	MMTAG_BENCH2_JSON=$(BENCH_OUT) $(GO) test -run 'TestWriteBenchJSON2' -v .

# Machine-readable instrumentation-overhead benchmarks (BENCH_1.json,
# the PR-1 trajectory file).
bench-json1:
	MMTAG_BENCH_JSON=$(CURDIR)/BENCH_1.json $(GO) test -run 'TestWriteBenchJSON$$' -v .

# Machine-readable event-log overhead benchmarks (BENCH_3.json).
BENCH3_OUT ?= $(CURDIR)/BENCH_3.json
bench-json3:
	MMTAG_BENCH3_JSON=$(BENCH3_OUT) $(GO) test -run 'TestWriteBenchJSON3' -v .

# Machine-readable zero-allocation hot-path benchmarks (BENCH_4.json):
# workspace-backed burst/modem/FFT/FIR figures with allocs/op recorded.
BENCH4_OUT ?= $(CURDIR)/BENCH_4.json
bench-json4:
	MMTAG_BENCH4_JSON=$(BENCH4_OUT) $(GO) test -run 'TestWriteBenchJSON4' -v .

# Machine-readable signal-tap overhead benchmarks (BENCH_5.json):
# taps-enabled and flight-recorder burst figures with allocs/op recorded,
# plus the in-test assertions that taps stay allocation-free.
BENCH5_OUT ?= $(CURDIR)/BENCH_5.json
bench-json5:
	MMTAG_BENCH5_JSON=$(BENCH5_OUT) $(GO) test -run 'TestWriteBenchJSON5' -v .

# Machine-readable frequency-domain fast-path benchmarks (BENCH_6.json):
# overlap-save convolution, radix-4 vs radix-2 FFT, real-input FFT, FFT
# preamble search and batched demodulation, with allocs/op recorded.
BENCH6_OUT ?= $(CURDIR)/BENCH_6.json
bench-json6:
	MMTAG_BENCH6_JSON=$(BENCH6_OUT) $(GO) test -run 'TestWriteBenchJSON6' -v .

# Time-series sampler overhead (BENCH_7.json): sampled vs metrics-only
# burst allocation profile (asserted equal in-test) plus the
# allocation-free Record micro-benchmarks.
BENCH7_OUT ?= $(CURDIR)/BENCH_7.json
bench-json7:
	MMTAG_BENCH7_JSON=$(BENCH7_OUT) $(GO) test -run 'TestWriteBenchJSON7' -v .

# Streaming decode pipeline (BENCH_8.json): zero-alloc serial Decoder
# figures plus the stage-parallel pipelined-vs-serial speedup on 4
# workers, with allocs/op recorded.
BENCH8_OUT ?= $(CURDIR)/BENCH_8.json
bench-json8:
	MMTAG_BENCH8_JSON=$(BENCH8_OUT) $(GO) test -run 'TestWriteBenchJSON8' -v .

# Compare a fresh benchmark run against the committed baseline.
bench-gate:
	$(MAKE) bench-json BENCH_OUT=/tmp/mmtag_bench_fresh.json
	$(GO) run ./tools/benchgate -baseline $(CURDIR)/BENCH_2.json -fresh /tmp/mmtag_bench_fresh.json

# Same gate for the event-log overhead file (no speedup claim).
bench-gate3:
	$(MAKE) bench-json3 BENCH3_OUT=/tmp/mmtag_bench3_fresh.json
	$(GO) run ./tools/benchgate -baseline $(CURDIR)/BENCH_3.json -fresh /tmp/mmtag_bench3_fresh.json -require-speedup 0

# Zero-allocation gate: ns/op is machine-scaled via the calibration
# benchmark, allocs/op is compared raw (it is machine-independent).
bench-gate4:
	$(MAKE) bench-json4 BENCH4_OUT=/tmp/mmtag_bench4_fresh.json
	$(GO) run ./tools/benchgate -baseline $(CURDIR)/BENCH_4.json -fresh /tmp/mmtag_bench4_fresh.json -require-speedup 0 -require-sweep-speedup 1.0

# Signal-tap overhead gate: same machine-scaled ns/op + raw allocs/op
# comparison for the BENCH_5 taps/flight-recorder figures. The hard
# contract here is the allocation profile (compared raw and tight);
# burst-level ns/op is noisy on loaded runners, so it gets extra slack.
bench-gate5:
	$(MAKE) bench-json5 BENCH5_OUT=/tmp/mmtag_bench5_fresh.json
	$(GO) run ./tools/benchgate -baseline $(CURDIR)/BENCH_5.json -fresh /tmp/mmtag_bench5_fresh.json -require-speedup 0 -tolerance 0.40

# Frequency-domain fast-path gate: beyond the usual machine-scaled
# ns/op + raw allocs/op comparison, the -ratio gates assert the PR's
# headline speedups inside the fresh run itself (both sides measured on
# the same machine, so no calibration noise): FFT convolution ≥ 5× over
# the direct 63-tap block filter, and the radix-4 plan ahead of the
# plain radix-2 kernel.
bench-gate6:
	$(MAKE) bench-json6 BENCH6_OUT=/tmp/mmtag_bench6_fresh.json
	$(GO) run ./tools/benchgate -baseline $(CURDIR)/BENCH_6.json -fresh /tmp/mmtag_bench6_fresh.json \
		-require-speedup 0 -tolerance 0.40 \
		-ratio "fir_block_inplace/fir_fft_block_ws>=5" \
		-ratio "fft_radix2_1024/fft_radix4_1024_ws>=1.2"

# Sampler overhead gate: machine-scaled ns/op + raw allocs/op. The hard
# contract (sampled burst allocs == metrics-only burst allocs, Record
# == 0 allocs) is asserted inside TestWriteBenchJSON7 itself, so the
# fresh file cannot even be produced if sampling starts allocating.
bench-gate7:
	$(MAKE) bench-json7 BENCH7_OUT=/tmp/mmtag_bench7_fresh.json
	$(GO) run ./tools/benchgate -baseline $(CURDIR)/BENCH_7.json -fresh /tmp/mmtag_bench7_fresh.json -require-speedup 0 -tolerance 0.40

# Streaming decode gate: the serial Decoder's allocs/op stay pinned (raw
# comparison; stream_decode_frame is asserted == 0 inside the JSON writer
# itself) and the stage-parallel pipeline holds its ≥2× speedup over the
# single-burst serial loop wherever the machine has ≥4 CPUs (the @4
# qualifier skips the ratio on smaller containers).
bench-gate8:
	$(MAKE) bench-json8 BENCH8_OUT=/tmp/mmtag_bench8_fresh.json
	$(GO) run ./tools/benchgate -baseline $(CURDIR)/BENCH_8.json -fresh /tmp/mmtag_bench8_fresh.json \
		-require-speedup 0 -tolerance 0.40 \
		-ratio "stream_decode_serial/stream_decode_pipelined>=2.0@4"

# Markdown trend table across the whole BENCH_N.json history.
bench-trend:
	$(GO) run ./tools/benchgate -trend BENCH_2.json BENCH_3.json BENCH_4.json BENCH_5.json BENCH_6.json BENCH_7.json BENCH_8.json

# Cross-PR history report + regression gate: regenerate the current
# fast-path figures, render the per-metric trend over BENCH_1…8 plus the
# fresh run (ns/op scaled through the calibration benchmark), and fail
# when any allocation-tracked benchmark regresses past the best count
# ever recorded for it.
bench-history:
	$(MAKE) bench-json8 BENCH8_OUT=/tmp/mmtag_bench8_fresh.json
	$(GO) run ./tools/benchgate -history \
		BENCH_1.json BENCH_2.json BENCH_3.json BENCH_4.json BENCH_5.json BENCH_6.json BENCH_7.json BENCH_8.json \
		/tmp/mmtag_bench8_fresh.json

# Grid smoke: run the committed smoke grid at two worker counts, verify
# every cell manifest, and assert the deterministic artifacts are
# byte-identical (manifest.json quarantines the wall-clock fields).
grid-smoke:
	rm -rf /tmp/mmtag_grid_w1 /tmp/mmtag_grid_w8 /tmp/mmtag_grid_report
	$(GO) run ./cmd/mmtag grid -f experiments/smoke.json -workers 1 -out /tmp/mmtag_grid_w1
	$(GO) run ./cmd/mmtag grid -f experiments/smoke.json -workers 8 -out /tmp/mmtag_grid_w8
	$(GO) run ./cmd/mmtag verify -rundir /tmp/mmtag_grid_w1
	$(GO) run ./cmd/mmtag verify -rundir /tmp/mmtag_grid_w8
	diff -r -x manifest.json /tmp/mmtag_grid_w1 /tmp/mmtag_grid_w8
	$(GO) run ./cmd/mmtag grid-report -rundir /tmp/mmtag_grid_w1 -out /tmp/mmtag_grid_report

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

# Every evaluation artifact of the paper, as text tables.
experiments:
	$(GO) run ./cmd/mmtag all

# The paper's two evaluation figures as SVG images.
figures:
	$(GO) run ./cmd/mmtag fig6 -svg > fig6.svg
	$(GO) run ./cmd/mmtag fig7 -svg > fig7.svg
	$(GO) run ./cmd/mmtag retro -svg > retro.svg

clean:
	rm -f fig6.svg fig7.svg retro.svg test_output.txt bench_output.txt
