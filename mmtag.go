// Package mmtag is a simulation-grade reimplementation of "Millimeter
// Wave Backscatter: Toward Batteryless Wireless Networking at Gigabit
// Speeds" (Mazaheri, Chen, Abari — HotNets '20): a 24 GHz backscatter
// system whose passive Van Atta tag reflects the reader's signal back
// toward its direction of arrival — solving mmWave beam alignment with
// zero active components — while per-element RF switches OOK-modulate the
// reflection at up to gigabit rates.
//
// The package is the stable facade over the internal subsystems:
//
//	Link      — one reader ⇄ tag pair: link budgets (paper Fig. 7) and
//	            full waveform-level burst simulation.
//	Network   — many tags under one scanning reader (SDM + Aloha MAC).
//	NewTag    — the retrodirective tag model (paper Fig. 3b/4/5).
//	Experiments… — regeneration of every figure/claim in the paper.
//
// Quickstart:
//
//	link, _ := mmtag.NewLink(mmtag.Feet(4))
//	budget, _ := link.ComputeBudget()
//	fmt.Println(mmtag.FormatRate(budget.RateBps)) // "1.00 Gb/s"
package mmtag

import (
	"github.com/mmtag/mmtag/internal/antenna"
	"github.com/mmtag/mmtag/internal/channel"
	"github.com/mmtag/mmtag/internal/core"
	"github.com/mmtag/mmtag/internal/dsp"
	"github.com/mmtag/mmtag/internal/experiments"
	"github.com/mmtag/mmtag/internal/geom"
	"github.com/mmtag/mmtag/internal/grid"
	"github.com/mmtag/mmtag/internal/mac"
	"github.com/mmtag/mmtag/internal/obs"
	"github.com/mmtag/mmtag/internal/obs/alert"
	"github.com/mmtag/mmtag/internal/obs/event"
	"github.com/mmtag/mmtag/internal/obs/manifest"
	"github.com/mmtag/mmtag/internal/obs/serve"
	"github.com/mmtag/mmtag/internal/obs/signal"
	"github.com/mmtag/mmtag/internal/obs/tsdb"
	"github.com/mmtag/mmtag/internal/par"
	"github.com/mmtag/mmtag/internal/reader"
	"github.com/mmtag/mmtag/internal/rng"
	"github.com/mmtag/mmtag/internal/rundiff"
	"github.com/mmtag/mmtag/internal/sim"
	"github.com/mmtag/mmtag/internal/stream"
	"github.com/mmtag/mmtag/internal/tag"
	"github.com/mmtag/mmtag/internal/units"
	"github.com/mmtag/mmtag/internal/vanatta"
)

// Core system types.
type (
	// Link is one reader–tag pair; see core.Link.
	Link = core.Link
	// Budget is a link-budget breakdown (the Fig. 7 quantities).
	Budget = core.Budget
	// WaveformResult reports a waveform-level burst exchange.
	WaveformResult = core.WaveformResult
	// Capture is a raw synthesized receiver capture (persistable with
	// the iqfile format via cmd/mmtag-capture).
	Capture = core.Capture
	// Network is a multi-tag deployment under one reader.
	Network = core.Network
	// BeamReading is one beam's scan outcome.
	BeamReading = core.BeamReading
	// Tag is the backscatter device model.
	Tag = tag.Tag
	// ReaderConfig is the reader's RF configuration.
	ReaderConfig = reader.Config
	// Horn is the mechanically steered reader antenna.
	Horn = reader.Horn
	// Environment is the propagation scene.
	Environment = channel.Environment
	// Reflector is an NLOS bounce surface.
	Reflector = channel.Reflector
	// Fading is the Rician small-scale fading model.
	Fading = channel.Fading
	// VanAttaArray is the retrodirective aperture (paper Eq. 4–5).
	VanAttaArray = vanatta.Array
	// Codebook is a set of reader scan beams.
	Codebook = antenna.Codebook
	// Pose is a position + heading in the scene plane.
	Pose = geom.Pose
	// Vec is a 2-D point/vector.
	Vec = geom.Vec
	// Segment is a wall/blocker/reflector surface between two points.
	Segment = geom.Segment
	// Source is the deterministic randomness every simulation consumes.
	Source = rng.Source
	// ReaderBandwidth is one selectable receiver bandwidth.
	ReaderBandwidth = units.ReaderBandwidth
	// SDMConfig configures the multi-tag scan schedule.
	SDMConfig = mac.SDMConfig
	// SDMResult is a scheduled scan cycle.
	SDMResult = mac.SDMResult
	// Mobility moves an entity along waypoints at constant speed.
	Mobility = sim.Mobility
	// TrackConfig parameterizes a mobility run (RunTrack).
	TrackConfig = core.TrackConfig
	// TrackResult is a mobility run's sampled time series.
	TrackResult = core.TrackResult
	// StreamShape is the fixed burst geometry of a streaming session.
	StreamShape = stream.Shape
	// StreamFrame is one folded streaming-decode result.
	StreamFrame = stream.Frame
	// StreamConfig configures the stage-parallel pipeline.
	StreamConfig = stream.Config
	// StreamPipelineStats reports queue watermarks after a stream run.
	StreamPipelineStats = stream.PipelineStats
	// SessionConfig configures a continuous streaming decode session.
	SessionConfig = stream.SessionConfig
	// SessionResult summarizes a streaming session.
	SessionResult = stream.SessionResult
	// FlowConfig configures the per-tag sliding-window flow control.
	FlowConfig = stream.FlowConfig
	// FlowResult summarizes a flow-controlled delivery run.
	FlowResult = stream.FlowResult
	// Trace accumulates named time-series columns and renders CSV.
	Trace = sim.Trace
	// Registry is the observability metric + span store; see Metrics.
	Registry = obs.Registry
	// MetricsSnapshot is a point-in-time view of the Registry (JSON-able
	// via its JSON method).
	MetricsSnapshot = obs.Snapshot
	// Span is one timed operation in the tracer (nil = disabled no-op).
	Span = obs.Span
	// EventLog is the structured, ring-buffered event log; see Events.
	EventLog = event.Log
	// RunManifest is the manifest.json body a run directory carries.
	RunManifest = manifest.Manifest
	// RunInfo describes a run for WriteRunDir.
	RunInfo = manifest.RunInfo
	// SignalTap is the signal-level observability sink: per-burst scalar
	// telemetry, the last-burst snapshot and the flight recorder; see
	// EnableSignalTaps.
	SignalTap = signal.Tap
	// TelemetryServer answers live /metrics, /trace, /events, /healthz,
	// /dashboard and /debug/pprof/ queries; see ServeTelemetry.
	TelemetryServer = serve.Server
	// RunningTelemetry is a started telemetry listener (Close to stop).
	RunningTelemetry = serve.Running
	// Workspace is a reusable DSP scratch arena: pass one to the *WS
	// variants (Link.RunWaveformWS and friends) to amortize every hot-path
	// buffer and FFT plan across repeated bursts. Not safe for concurrent
	// use — keep one per goroutine. See DESIGN.md §9.
	Workspace = dsp.Workspace
	// Pipeline is a reusable receive chain owning its own Workspace; see
	// NewPipeline.
	Pipeline = reader.Pipeline
	// Sampler is the deterministic virtual-time series store every metric
	// update folds into when sampling is on; see EnableSampling.
	Sampler = tsdb.Sampler
	// TimeSeriesSnapshot is a point-in-time copy of the Sampler's rings.
	TimeSeriesSnapshot = tsdb.Snapshot
	// AlertRule is one declarative SLO rule (metric, window aggregation,
	// comparator, for-duration); see NewAlertEngine.
	AlertRule = alert.Rule
	// AlertEngine evaluates SLO rules against a time-series snapshot.
	AlertEngine = alert.Engine
	// AlertTransition is one firing/resolved state change.
	AlertTransition = alert.Transition
	// AlertRuleState is a rule's state after an evaluation pass.
	AlertRuleState = alert.RuleState
	// RunDiffOptions tune DiffRunDirs' tolerance gates.
	RunDiffOptions = rundiff.Options
	// RunDiffResult is a rendered run-directory comparison.
	RunDiffResult = rundiff.Result
)

// Metrics returns the process-wide observability registry, enabling
// collection on first call. Until then (and after DisableMetrics) every
// instrumentation site in the simulation is a no-op.
func Metrics() *Registry {
	if r := obs.Active(); r != nil {
		return r
	}
	return obs.Enable()
}

// MetricsEnabled reports whether observability collection is on.
func MetricsEnabled() bool { return obs.Enabled() }

// DisableMetrics turns observability collection back off; the previous
// registry (and its data) is dropped.
func DisableMetrics() { obs.Disable() }

// Snapshot freezes the current metrics registry — every counter, gauge,
// histogram series and finished span — enabling collection if needed.
func Snapshot() MetricsSnapshot { return Metrics().Snapshot() }

// MetricsText renders the current registry in the Prometheus text
// exposition format, enabling collection if needed.
func MetricsText() string { return Metrics().PrometheusText() }

// Events returns the process-wide structured event log, enabling
// collection on first call. Until then (and after DisableEvents) every
// event site in the simulation is a no-op. The log's JSONL exposition is
// byte-identical for any worker count (see DESIGN.md §7).
func Events() *EventLog {
	if l := event.Active(); l != nil {
		return l
	}
	return event.Enable(0)
}

// EventsEnabled reports whether event collection is on.
func EventsEnabled() bool { return event.Enabled() }

// DisableEvents turns event collection back off; the previous log (and
// its entries) is dropped.
func DisableEvents() { event.Disable() }

// EnableSignalTaps turns on the signal-level observability taps (SNR,
// EVM, sync offset, soft-margin histograms plus the dashboard's
// last-burst snapshot), enabling them on first call. flightRecorderK > 0
// additionally attaches a flight recorder retaining the K most recent
// failing bursts as IQ captures (CRC fail, sync loss, ARQ residual,
// rate-adapt downshift); WriteRunDir archives them with digests.
func EnableSignalTaps(flightRecorderK int) *SignalTap {
	t := signal.Enable()
	if flightRecorderK > 0 {
		t.SetFlightRecorder(flightRecorderK)
	}
	return t
}

// SignalTapsEnabled reports whether the signal taps are on.
func SignalTapsEnabled() bool { return signal.Enabled() }

// DisableSignalTaps turns the signal taps back off; the previous tap
// (and its flight-recorder contents) is dropped.
func DisableSignalTaps() { signal.Disable() }

// EnableSampling attaches a deterministic virtual-time sampler to the
// metrics registry (enabling collection if needed): every counter,
// gauge and histogram update folds into bounded delta rings at interval
// dt seconds, with the time horizon doubling (and resolution halving)
// whenever the rings fill. The resulting timeseries.json is
// byte-identical for any worker count; wall-clock metrics
// (tsdb.WallClockMetrics) are excluded. ServeTelemetry and WriteRunDir
// pick the active sampler up automatically.
func EnableSampling(dt float64) (*Sampler, error) {
	s, err := tsdb.Attach(Metrics(), dt)
	if err != nil {
		return nil, err
	}
	tsdb.EnableWith(s)
	return s, nil
}

// SamplingEnabled reports whether a sampler is active.
func SamplingEnabled() bool { return tsdb.Enabled() }

// DisableSampling detaches the active sampler; recorded series are
// dropped. The registry keeps collecting unsampled.
func DisableSampling() {
	if r := obs.Active(); r != nil {
		r.SetSampleSink(nil)
	}
	tsdb.Disable()
}

// DefaultAlertRules returns the built-in SLO rule set: BER target, ARQ
// p99 latency, sync-loss streaks and flight-recorder trigger rate.
func DefaultAlertRules() []AlertRule { return alert.DefaultRules() }

// NewAlertEngine builds an alert engine from validated rules (nil =
// DefaultAlertRules). Evaluate it against Sampler.Snapshot().
func NewAlertEngine(rules []AlertRule) (*AlertEngine, error) {
	if rules == nil {
		rules = alert.DefaultRules()
	}
	return alert.New(rules)
}

// DiffRunDirs compares the metric snapshots of two run directories with
// relative/absolute tolerance gates; histogram series compare by count
// and interpolated quantiles, never by scheduling-ordered sums. The
// mmtag CLI's diff subcommand is this function plus a nonzero exit.
func DiffRunDirs(aDir, bDir string, opt RunDiffOptions) (*RunDiffResult, error) {
	return rundiff.Diff(aDir, bDir, opt)
}

// ServeTelemetry starts the live telemetry HTTP server on addr (":0"
// picks a free port), enabling metrics and event collection if needed.
// It serves /metrics, /metrics.json, /trace, /events, /healthz,
// /dashboard and /debug/pprof/ until Close, reading concurrently with
// any running simulation. An active signal tap (EnableSignalTaps) is
// attached automatically so the dashboard gains the constellation and
// spectrum panels, and an active sampler (EnableSampling) adds
// /timeseries, /alerts and the SSE /stream feed plus the dashboard's
// time-axis charts and alert panel (default SLO rules). The returned
// server's SetPhase labels /healthz.
func ServeTelemetry(addr string) (*TelemetryServer, *RunningTelemetry, error) {
	s := serve.New(Metrics(), Events())
	if t := signal.Active(); t != nil {
		s.AttachSignal(t)
	}
	if smp := tsdb.Active(); smp != nil {
		s.AttachTimeseries(smp)
		s.AttachAlerts(alert.Default())
	}
	run, err := s.Start(addr)
	if err != nil {
		return nil, nil, err
	}
	return s, run, nil
}

// WriteRunDir captures the active metrics registry and event log (either
// may be disabled) into dir as a self-describing run manifest:
// manifest.json, metrics.json, trace.json and events.jsonl, with SHA-256
// digests of every artifact recorded in the manifest. When signal taps
// are enabled with a flight recorder, its IQ captures (flight_*.iq plus
// the flight.json index) are archived and digested alongside, so
// VerifyRunDir covers them too. With sampling on (EnableSampling), the
// sampled series are archived as timeseries.json and the default SLO
// rules' transitions as alerts.jsonl, digested the same way.
func WriteRunDir(dir string, info RunInfo) (RunManifest, error) {
	var extra []manifest.ExtraFile
	if t := signal.Active(); t != nil {
		files, err := t.FlightFiles()
		if err != nil {
			return RunManifest{}, err
		}
		for _, f := range files {
			extra = append(extra, manifest.ExtraFile{Name: f.Name, Data: f.Data})
		}
	}
	if smp := tsdb.Active(); smp != nil {
		extra = append(extra, manifest.ExtraFile{Name: "timeseries.json", Data: smp.JSON()})
		trans, _ := alert.Default().Evaluate(smp.Snapshot())
		extra = append(extra, manifest.ExtraFile{Name: "alerts.jsonl", Data: alert.EncodeJSONL(trans)})
	}
	return manifest.Write(dir, info, obs.Active(), event.Active(), extra...)
}

// VerifyRunDir re-hashes every artifact a run directory's manifest lists
// and reports the first digest mismatch.
func VerifyRunDir(dir string) error { return manifest.Verify(dir) }

// GridSpec declares an experiment grid: drivers crossed with repeats and
// sweep sizes, every cell seeded by identity hashing so any subset of
// the grid re-runs byte-identically (see internal/grid).
type GridSpec = grid.Spec

// GridCellSpec is one declared block of grid cells.
type GridCellSpec = grid.CellSpec

// GridIndex is the deterministic record of an executed grid (grid.json).
type GridIndex = grid.Index

// LoadGridSpec reads and validates a grid spec file (experiments.json).
func LoadGridSpec(path string) (*GridSpec, error) { return grid.Load(path) }

// RunGrid executes every cell of a grid spec across workers goroutines
// (one reusable DSP workspace per worker), archiving each cell as a
// digest-verified run directory under outDir. The deterministic
// artifacts are byte-identical for any worker count.
func RunGrid(spec *GridSpec, outDir string, workers int) (*GridIndex, error) {
	return grid.Run(spec, outDir, workers)
}

// ReportGrid reduces an archived grid run to grouped CSVs, markdown and
// LaTeX tables and SVG plots under reportDir.
func ReportGrid(runDir, reportDir string) error { return grid.Report(runDir, reportDir) }

// VerifyGridDir checks every cell manifest of an archived grid run.
func VerifyGridDir(dir string) error { return grid.VerifyDir(dir) }

// GridDrivers lists the experiment drivers a grid spec may name.
func GridDrivers() []string { return grid.Drivers() }

// NewTrace returns a trace with the given column names.
func NewTrace(cols ...string) *Trace { return sim.NewTrace(cols...) }

// RunTrack executes a tag-mobility run against a paper-default reader:
// the reader re-scans for its best beam at every sample while the tag,
// being retrodirective, never realigns.
func RunTrack(cfg TrackConfig) (TrackResult, error) { return core.RunTrack(cfg) }

// NewLink returns a paper-default link: 20 mW reader at the origin, a
// 6-element tag at rangeM meters facing back, free space, 24 GHz.
func NewLink(rangeM float64) (*Link, error) { return core.NewDefaultLink(rangeM) }

// NewNetwork returns a paper-default reader serving the given tags.
func NewNetwork(tags ...*Tag) *Network { return core.NewDefaultNetwork(tags...) }

// NewTag returns a 6-element tag with the given identity and pose.
func NewTag(id uint16, pose Pose) (*Tag, error) { return tag.New(id, pose) }

// NewTagN returns a tag with n elements (even, ≥ 2) at frequency f Hz.
func NewTagN(id uint16, pose Pose, n int, f float64) (*Tag, error) {
	return tag.NewWithElements(id, pose, n, f)
}

// NewVanAtta returns the bare retrodirective aperture (n even, ≥ 2).
func NewVanAtta(n int, freqHz float64) (*VanAttaArray, error) { return vanatta.New(n, freqHz) }

// NewSource returns a deterministic randomness source for reproducible
// simulations.
func NewSource(seed uint64) *Source { return rng.New(seed) }

// NewWorkspace returns an empty DSP workspace. Results are identical
// with or without one; a workspace only changes where scratch memory
// comes from (see DESIGN.md §9 for the ownership rules).
func NewWorkspace() *Workspace { return dsp.NewWorkspace() }

// NewPipeline returns a reusable burst-receive pipeline: repeated
// DecodeBurst calls recycle every correlation, normalization and
// bit-slicing buffer instead of reallocating them per burst.
func NewPipeline() *Pipeline { return reader.NewPipeline() }

// SetWorkers sets the worker count every parallel sweep in the library
// uses (Monte-Carlo BER shards, experiment trial fan-outs, angle
// sweeps) and returns the previous value. The default is
// runtime.NumCPU(); n <= 0 restores that default. Results are
// byte-identical for every worker count — parallelism only changes
// wall-clock time, never outputs.
func SetWorkers(n int) int { return par.SetWorkers(n) }

// Workers reports the current parallel worker count.
func Workers() int { return par.Workers() }

// NewCodebook returns n scan beams uniformly covering [minRad, maxRad].
func NewCodebook(minRad, maxRad float64, n int) (Codebook, error) {
	return antenna.UniformCodebook(minRad, maxRad, n)
}

// ScheduleSDM builds one multi-tag scan cycle from scan readings.
func ScheduleSDM(readings []BeamReading, cfg SDMConfig, src *Source) (SDMResult, error) {
	return mac.ScheduleSDM(readings, cfg, src)
}

// DefaultSDMConfig returns the standard 1 ms dwell single-beam schedule.
func DefaultSDMConfig() SDMConfig { return mac.DefaultSDMConfig() }

// Feet converts feet to meters (the paper reports ranges in feet).
func Feet(ft float64) float64 { return units.FeetToMeters(ft) }

// FormatRate renders a bit rate with engineering units.
func FormatRate(bps float64) string { return units.FormatRate(bps) }

// PaperBandwidths returns the three receiver bandwidths of paper Fig. 7.
func PaperBandwidths() []ReaderBandwidth { return units.PaperBandwidths() }

// Experiment drivers — each regenerates one paper artifact (DESIGN.md §4).
var (
	// Figure6 regenerates paper Fig. 6 (element S11, switch off/on).
	Figure6 = experiments.Figure6
	// Figure7 regenerates paper Fig. 7 (power & rate vs range).
	Figure7 = experiments.Figure7
	// Retrodirectivity regenerates the Eq. 5 / Fig. 3 comparison.
	Retrodirectivity = experiments.Retrodirectivity
	// Beamwidth checks the §7 geometry claims.
	Beamwidth = experiments.Beamwidth
	// Comparison regenerates the §1/§3 baseline table.
	Comparison = experiments.Comparison
	// BERValidation regenerates the OOK BER waterfall (E6).
	BERValidation = experiments.BERValidation
	// MultiTag runs the §9 multi-tag extension (E7).
	MultiTag = experiments.MultiTag
	// SelfInterference runs the §9 isolation sweep (E8).
	SelfInterference = experiments.SelfInterference
	// EnergyFeasibility runs the batteryless-harvest sweep (E9).
	EnergyFeasibility = experiments.EnergyFeasibility
	// AntiCollision compares Aloha against the binary query tree (E10).
	AntiCollision = experiments.AntiCollision
	// Blockage runs the §4 NLOS-fallback sweep (E11).
	Blockage = experiments.Blockage
	// RateAdaptation runs the OOK/4-ASK adaptation sweep (E12).
	RateAdaptation = experiments.RateAdaptation
	// FadingMargin runs the Rician-fading margin sweep (E13).
	FadingMargin = experiments.FadingMargin
	// BandScaling runs the 24/39/60 GHz comparison (E14).
	BandScaling = experiments.BandScaling
	// CodedBER runs the Hamming(7,4) coded-vs-uncoded sweep (E15).
	CodedBER = experiments.CodedBER
	// ARQGoodput runs the link-layer stop-and-wait sweep (E16).
	ARQGoodput = experiments.ARQGoodput
	// PlanarTag runs the 2-D Van Atta comparison (E17).
	PlanarTag = experiments.PlanarTag
	// ArraySizeAblation runs ablation A1.
	ArraySizeAblation = experiments.ArraySizeAblation
	// ImpairmentAblation runs ablation A2.
	ImpairmentAblation = experiments.ImpairmentAblation
	// StreamThroughput runs the sustained streaming session and the
	// flow-controlled offered-load sweep (E18).
	StreamThroughput = experiments.StreamThroughput
)

// Streaming sessions — the continuous-PHY layer (internal/stream).
var (
	// NewStreamShape validates a streaming burst geometry.
	NewStreamShape = stream.NewShape
	// NewStreamDecoder returns the zero-alloc serial streaming decoder.
	NewStreamDecoder = stream.NewDecoder
	// NewStreamPipeline builds the stage-parallel decode pipeline.
	NewStreamPipeline = stream.NewPipeline
	// RunStreamSession streams frames through the pipeline with metrics,
	// events and worker-invariant artifacts.
	RunStreamSession = stream.RunSession
	// RunStreamFlow runs the per-tag sliding-window flow control over
	// real waveform bursts on the virtual clock.
	RunStreamFlow = stream.RunFlow
)
