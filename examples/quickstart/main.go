// Quickstart: one reader, one mmTag, one burst.
//
// Builds the paper's default link (20 mW reader, 6-element Van Atta tag
// at 4 ft), prints the Fig. 7 link budget, then actually transmits a
// payload at waveform level — synthesizing the tag's OOK backscatter,
// pushing it through the channel and noise, and decoding it with the
// reader pipeline.
//
// Run: go run ./examples/quickstart
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"time"

	"github.com/mmtag/mmtag"
)

func main() {
	workers := flag.Int("workers", runtime.NumCPU(), "parallel workers for the library's sweep fan-outs")
	serveAt := flag.String("serve", "", "serve live telemetry (metrics, events, pprof) on this address and stay up after the burst (Ctrl-C to exit)")
	rundir := flag.String("rundir", "", "write a self-describing run manifest into this directory after the burst")
	flag.Parse()
	mmtag.SetWorkers(*workers)
	started := time.Now()
	if *rundir != "" {
		// Enable the stores up front so the burst lands in the archived
		// manifest.
		mmtag.Metrics()
		mmtag.Events()
	}
	if *serveAt != "" {
		_, running, err := mmtag.ServeTelemetry(*serveAt)
		if err != nil {
			log.Fatal(err)
		}
		defer running.Close()
		fmt.Fprintf(os.Stderr, "quickstart: telemetry on http://%s/\n", running.Addr())
	}
	link, err := mmtag.NewLink(mmtag.Feet(4))
	if err != nil {
		log.Fatal(err)
	}

	// 1. The analytic link budget — exactly the quantities of paper
	//    Fig. 7.
	budget, err := link.ComputeBudget()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== link budget at 4 ft ==")
	fmt.Printf("tag signal at reader : %.1f dBm\n", budget.ReceivedDBm)
	for _, bw := range link.Reader.Bandwidths {
		fmt.Printf("SNR in %-8s      : %.1f dB\n", bw.Label, budget.SNRdB[bw.Label])
	}
	fmt.Printf("achievable rate      : %s (via %s receiver bandwidth)\n",
		mmtag.FormatRate(budget.RateBps), budget.RateBandwidth.Label)

	// 2. A real burst, end to end: frame → switch waveform → channel →
	//    sync → demod → CRC.
	payload := []byte("hello from a batteryless tag")
	src := mmtag.NewSource(2024)
	res, err := link.RunWaveform(payload, link.Reader.Bandwidths[1], src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== waveform-level burst (200 MHz receiver) ==")
	fmt.Printf("decoded              : %v (CRC %v)\n", res.Decoded, res.Decoded)
	fmt.Printf("tag ID               : %d\n", res.TagID)
	fmt.Printf("payload              : %q\n", res.Payload)
	fmt.Printf("bit errors           : %d / %d\n", res.BitErrors, res.TotalBits)
	fmt.Printf("measured SNR         : %.1f dB (budget predicted %.1f dB)\n",
		res.MeasuredSNRdB, res.ExpectedSNRdB)

	if *rundir != "" {
		if _, err := mmtag.WriteRunDir(*rundir, mmtag.RunInfo{
			Experiment: "example/quickstart",
			Workers:    *workers,
			Args:       os.Args,
			Started:    started,
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "quickstart: run manifest written to %s\n", *rundir)
	}
	if *serveAt != "" {
		// Keep the telemetry endpoints scrapable until interrupted, so
		// the finished burst's metrics and events can still be curled.
		fmt.Fprintln(os.Stderr, "quickstart: burst complete; telemetry still up — Ctrl-C to exit")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
	}
}
