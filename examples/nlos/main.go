// NLOS: paper §4's blocked-path story, played out at waveform level.
//
// A cabinet blocks the direct path between the reader and a tag at 4 ft.
// With nothing else in the room the link is dead; adding a metal side
// panel restores it through a single bounce — and because the Van Atta
// tag re-radiates along the arriving ray, the *tag* needs no
// reconfiguration whatsoever: only the reader re-aims at the bounce
// point. We verify with a real decoded burst over the NLOS path.
//
// Run: go run ./examples/nlos
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"
	"runtime"
	"time"

	"github.com/mmtag/mmtag"
)

func main() {
	workers := flag.Int("workers", runtime.NumCPU(), "parallel workers for the library's sweep fan-outs")
	serveAt := flag.String("serve", "", "serve live telemetry (metrics, events, pprof) on this address and stay up after the run (Ctrl-C to exit)")
	rundir := flag.String("rundir", "", "write a self-describing run manifest into this directory after the run")
	flag.Parse()
	mmtag.SetWorkers(*workers)
	started := time.Now()
	if *rundir != "" {
		// Enable the stores up front so the NLOS burst lands in the
		// archived manifest.
		mmtag.Metrics()
		mmtag.Events()
	}
	if *serveAt != "" {
		_, running, err := mmtag.ServeTelemetry(*serveAt)
		if err != nil {
			log.Fatal(err)
		}
		defer running.Close()
		fmt.Fprintf(os.Stderr, "nlos: telemetry on http://%s/\n", running.Addr())
	}
	link, err := mmtag.NewLink(mmtag.Feet(4))
	if err != nil {
		log.Fatal(err)
	}

	// A cabinet across the direct path.
	mid := link.Tag.Pose.Pos.X / 2
	link.Env.Blockers = []mmtag.Segment{
		{A: mmtag.Vec{X: mid, Y: -0.25}, B: mmtag.Vec{X: mid, Y: 0.25}},
	}
	b, err := link.ComputeBudget()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("blocked, no reflector : severed=%v\n", b.Severed)

	// A metal panel along the side wall.
	link.Env.Reflectors = []mmtag.Reflector{{
		Surface: mmtag.Segment{A: mmtag.Vec{X: -1, Y: 0.35}, B: mmtag.Vec{X: 3, Y: 0.35}},
		LossDB:  1,
	}}
	b, err = link.ComputeBudget()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with metal panel      : path=%v, length %.1f ft, departure %.1f°\n",
		b.Ray.Kind, b.Ray.LengthM/0.3048, b.Ray.DepartureRad*180/math.Pi)

	// Only the reader re-aims; the tag is untouched.
	link.BeamRad = b.Ray.DepartureRad
	b, err = link.ComputeBudget()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reader re-aimed       : Pr %.1f dBm, rate %s\n",
		b.ReceivedDBm, mmtag.FormatRate(b.RateBps))

	// Prove it with bits: a full waveform burst over the bounce.
	res, err := link.RunWaveform([]byte("around the corner"), link.Reader.Bandwidths[2], mmtag.NewSource(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("waveform burst        : decoded=%v payload=%q bitErrors=%d (SNR %.1f dB)\n",
		res.Decoded, res.Payload, res.BitErrors, res.MeasuredSNRdB)

	if *rundir != "" {
		if _, err := mmtag.WriteRunDir(*rundir, mmtag.RunInfo{
			Experiment: "example/nlos",
			Workers:    *workers,
			Args:       os.Args,
			Started:    started,
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "nlos: run manifest written to %s\n", *rundir)
	}
	if *serveAt != "" {
		// Keep the telemetry endpoints scrapable until interrupted, so
		// the finished run's metrics and events can still be curled.
		fmt.Fprintln(os.Stderr, "nlos: run complete; telemetry still up — Ctrl-C to exit")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
	}
}
