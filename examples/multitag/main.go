// Multitag: the §9 network — a warehouse shelf of batteryless sensors
// served by one scanning reader.
//
// Ten tags sit across a ±60° sector at mixed ranges. The reader scans an
// 8-beam codebook, resolves same-beam collisions with framed slotted
// Aloha, and schedules air time sector by sector (SDM). We print the
// resulting per-tag goodput and fairness, then repeat with the 4-beam
// MIMO reader extension.
//
// Run: go run ./examples/multitag
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"
	"runtime"
	"time"

	"github.com/mmtag/mmtag"
)

func main() {
	workers := flag.Int("workers", runtime.NumCPU(), "parallel workers for the library's sweep fan-outs")
	serveAt := flag.String("serve", "", "serve live telemetry (metrics, events, pprof) on this address and stay up after the schedule (Ctrl-C to exit)")
	rundir := flag.String("rundir", "", "write a self-describing run manifest into this directory after the schedule")
	flag.Parse()
	mmtag.SetWorkers(*workers)
	started := time.Now()
	if *rundir != "" {
		// Enable the stores up front so the scan and schedule land in
		// the archived manifest.
		mmtag.Metrics()
		mmtag.Events()
	}
	if *serveAt != "" {
		_, running, err := mmtag.ServeTelemetry(*serveAt)
		if err != nil {
			log.Fatal(err)
		}
		defer running.Close()
		fmt.Fprintf(os.Stderr, "multitag: telemetry on http://%s/\n", running.Addr())
	}

	src := mmtag.NewSource(99)
	// Ten tags: a dense cluster near 20° (they will share a beam and
	// need Aloha) plus scattered singles.
	type spot struct {
		deg, ft float64
	}
	spots := []spot{
		{20, 4}, {22, 5}, {18, 6}, // cluster → same beam
		{-45, 4}, {-20, 7}, {0, 3}, {5, 9}, {40, 5}, {-35, 8}, {55, 6},
	}
	tags := make([]*mmtag.Tag, 0, len(spots))
	for i, s := range spots {
		th := s.deg * math.Pi / 180
		pos := mmtag.Vec{X: mmtag.Feet(s.ft) * math.Cos(th), Y: mmtag.Feet(s.ft) * math.Sin(th)}
		tg, err := mmtag.NewTag(uint16(i+1), mmtag.Pose{Pos: pos, Heading: th + math.Pi})
		if err != nil {
			log.Fatal(err)
		}
		tags = append(tags, tg)
	}
	net := mmtag.NewNetwork(tags...)
	cb, err := mmtag.NewCodebook(-math.Pi/3, math.Pi/3, 8)
	if err != nil {
		log.Fatal(err)
	}
	readings, err := net.Scan(cb)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== scan ==")
	for _, br := range readings {
		if len(br.Tags) == 0 {
			continue
		}
		fmt.Printf("beam %+5.1f°: %d tag(s)\n", br.BeamRad*180/math.Pi, len(br.Tags))
	}

	for _, beams := range []int{1, 4} {
		cfg := mmtag.DefaultSDMConfig()
		cfg.Beams = beams
		sdm, err := mmtag.ScheduleSDM(readings, cfg, src.Split())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n== SDM schedule, %d beam(s) ==\n", beams)
		fmt.Printf("cycle %.2f ms, aggregate %s, collision overhead %.2f ms\n",
			sdm.CycleS*1e3, mmtag.FormatRate(sdm.AggregateBps), sdm.CollisionOverheadS*1e3)
		for _, sh := range sdm.Shares {
			fmt.Printf("tag %2d: link %-12s goodput %s\n",
				sh.TagID, mmtag.FormatRate(sh.LinkRateBps), mmtag.FormatRate(sh.GoodputBps))
		}
	}

	if *rundir != "" {
		if _, err := mmtag.WriteRunDir(*rundir, mmtag.RunInfo{
			Experiment: "example/multitag",
			Workers:    *workers,
			Args:       os.Args,
			Started:    started,
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "multitag: run manifest written to %s\n", *rundir)
	}

	if *serveAt != "" {
		// Keep the telemetry endpoints scrapable until interrupted, so the
		// schedule's metrics and events can still be curled.
		fmt.Fprintln(os.Stderr, "multitag: schedule complete; telemetry still up — Ctrl-C to exit")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
	}
}
