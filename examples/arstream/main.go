// ARStream: the intro's motivating workload — an AR-lens-class device
// that must stream high-rate data on a harvested energy budget.
//
// A tag walks a ~14-second path through the room (toward the reader, then
// across, then away) while the reader tracks it with its best scan beam.
// At every step we log range, received power, the achievable rate from
// the Fig. 7 table, and the tag's modulation power draw — demonstrating
// sustained 10 Mb/s–1 Gb/s streaming with microwatt-to-milliwatt tag
// power, re-aligning for free as the tag moves.
//
// Run: go run ./examples/arstream
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"
	"runtime"
	"time"

	"github.com/mmtag/mmtag"
)

func main() {
	workers := flag.Int("workers", runtime.NumCPU(), "parallel workers for the library's sweep fan-outs")
	serveAt := flag.String("serve", "", "serve live telemetry (metrics, events, pprof) on this address and stay up after the walk (Ctrl-C to exit)")
	rundir := flag.String("rundir", "", "write a self-describing run manifest into this directory after the walk")
	flag.Parse()
	mmtag.SetWorkers(*workers)
	started := time.Now()
	if *rundir != "" {
		// Enable the stores up front so the walk's metrics and events
		// land in the archived manifest.
		mmtag.Metrics()
		mmtag.Events()
	}
	if *serveAt != "" {
		_, running, err := mmtag.ServeTelemetry(*serveAt)
		if err != nil {
			log.Fatal(err)
		}
		defer running.Close()
		fmt.Fprintf(os.Stderr, "arstream: telemetry on http://%s/\n", running.Addr())
	}
	cb, err := mmtag.NewCodebook(-math.Pi/2, math.Pi/2, 24)
	if err != nil {
		log.Fatal(err)
	}
	res, err := mmtag.RunTrack(mmtag.TrackConfig{
		Walk: mmtag.Mobility{
			Waypoints: []mmtag.Vec{
				{X: mmtag.Feet(10), Y: mmtag.Feet(4)},
				{X: mmtag.Feet(4), Y: mmtag.Feet(1)},
				{X: mmtag.Feet(4), Y: mmtag.Feet(-3)},
				{X: mmtag.Feet(9), Y: mmtag.Feet(-5)},
			},
			SpeedMps: 0.5,
		},
		// The tag faces wherever it happens to face — here, fixed west —
		// and never has to align; only the reader re-scans.
		TagHeading: math.Pi,
		Codebook:   cb,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("t(s)  range(ft)  beam(deg)  Pr(dBm)  rate          tag power")
	for _, s := range res.Samples {
		fmt.Printf("%4.0f  %9.1f  %9.1f  %7.1f  %-12s  %8.1f µW\n",
			s.TimeS, s.RangeFt, s.BeamRad*180/math.Pi, s.ReceivedDBm,
			mmtag.FormatRate(s.RateBps), s.TagPowerW*1e6)
	}
	fmt.Printf("\nstream rate over the walk: min %s, mean %s, max %s\n",
		mmtag.FormatRate(res.MinRate), mmtag.FormatRate(res.MeanRate), mmtag.FormatRate(res.MaxRate))
	fmt.Println("\nCSV trace:")
	fmt.Print(res.Trace.CSV())

	if *rundir != "" {
		if _, err := mmtag.WriteRunDir(*rundir, mmtag.RunInfo{
			Experiment: "example/arstream",
			Workers:    *workers,
			Args:       os.Args,
			Started:    started,
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "arstream: run manifest written to %s\n", *rundir)
	}

	if *serveAt != "" {
		// Keep the telemetry endpoints scrapable until interrupted, so the
		// finished walk's metrics and events can still be curled.
		fmt.Fprintln(os.Stderr, "arstream: walk complete; telemetry still up — Ctrl-C to exit")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
	}
}
