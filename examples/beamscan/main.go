// Beamscan: the paper's Fig. 2 loop, plus the mobility argument of §3.
//
// A reader scans a ±60° sector for a tag parked at an unknown angle,
// locks its best beam, and then the tag *rotates in place* — showing that
// the Van Atta tag keeps the link alive at every orientation while a
// fixed-beam tag (the Kimionis-style baseline) collapses as soon as it
// turns away.
//
// Run: go run ./examples/beamscan
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"
	"runtime"
	"time"

	"github.com/mmtag/mmtag"
	"github.com/mmtag/mmtag/internal/vanatta"
)

func main() {
	workers := flag.Int("workers", runtime.NumCPU(), "parallel workers for the library's sweep fan-outs")
	serveAt := flag.String("serve", "", "serve live telemetry (metrics, events, pprof) on this address and stay up after the scan (Ctrl-C to exit)")
	rundir := flag.String("rundir", "", "write a self-describing run manifest into this directory after the scan")
	flag.Parse()
	mmtag.SetWorkers(*workers)
	started := time.Now()
	if *rundir != "" {
		// Enable the stores up front so the scan lands in the archived
		// manifest.
		mmtag.Metrics()
		mmtag.Events()
	}
	if *serveAt != "" {
		_, running, err := mmtag.ServeTelemetry(*serveAt)
		if err != nil {
			log.Fatal(err)
		}
		defer running.Close()
		fmt.Fprintf(os.Stderr, "beamscan: telemetry on http://%s/\n", running.Addr())
	}
	// Hide the tag at 31° off the reader's boresight, 5 ft away.
	const tagAngle = 31 * math.Pi / 180
	pos := mmtag.Vec{X: mmtag.Feet(5) * math.Cos(tagAngle), Y: mmtag.Feet(5) * math.Sin(tagAngle)}
	tg, err := mmtag.NewTag(42, mmtag.Pose{Pos: pos, Heading: tagAngle + math.Pi})
	if err != nil {
		log.Fatal(err)
	}
	net := mmtag.NewNetwork(tg)

	// 1. Sector scan: 12 beams across ±60°.
	cb, err := mmtag.NewCodebook(-math.Pi/3, math.Pi/3, 12)
	if err != nil {
		log.Fatal(err)
	}
	readings, err := net.Scan(cb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== sector scan (reader side — the only side that needs to search) ==")
	for _, br := range readings {
		marker := ""
		if len(br.Tags) > 0 {
			marker = fmt.Sprintf("  <-- tag %d at %.1f dBm, %s",
				br.Tags[0].TagID, br.Tags[0].ReceivedDBm, mmtag.FormatRate(br.Tags[0].RateBps))
		}
		fmt.Printf("beam %+6.1f°%s\n", br.BeamRad*180/math.Pi, marker)
	}
	beam, pr, err := net.BestBeamFor(tg, cb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlocked beam %.1f° (true tag angle %.1f°), %.1f dBm\n\n",
		beam*180/math.Pi, tagAngle*180/math.Pi, pr)

	// 2. Rotate the tag in place: Van Atta vs fixed-beam monostatic
	//    return (normalized dB). This is why the tag needs no alignment.
	va, err := mmtag.NewVanAtta(6, 24e9)
	if err != nil {
		log.Fatal(err)
	}
	fb, err := vanatta.NewFixedBeam(6, 24e9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== tag rotation (tag side — no search, by construction) ==")
	fmt.Println("rotation   Van Atta   fixed-beam")
	for deg := -60.0; deg <= 60; deg += 15 {
		th := deg * math.Pi / 180
		vaDB, fbDB := vanatta.AngleSweep(va, fb, 24e9, []float64{th})
		fbs := fmt.Sprintf("%8.1f dB", fbDB[0])
		if math.IsInf(fbDB[0], -1) {
			fbs = "      -inf"
		}
		fmt.Printf("%+6.0f°  %8.1f dB  %s\n", deg, vaDB[0], fbs)
	}
	fmt.Println("\nthe retrodirective aperture holds within a few dB at every angle;")
	fmt.Println("the fixed-beam tag only works facing the reader (paper §3).")

	if *rundir != "" {
		if _, err := mmtag.WriteRunDir(*rundir, mmtag.RunInfo{
			Experiment: "example/beamscan",
			Workers:    *workers,
			Args:       os.Args,
			Started:    started,
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "beamscan: run manifest written to %s\n", *rundir)
	}
	if *serveAt != "" {
		// Keep the telemetry endpoints scrapable until interrupted, so
		// the finished scan's metrics and events can still be curled.
		fmt.Fprintln(os.Stderr, "beamscan: scan complete; telemetry still up — Ctrl-C to exit")
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
	}
}
